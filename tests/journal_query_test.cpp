// The queryable-archive layer (src/journal/index.*, compression,
// retention, predicate replay) — the ISSUE's test-coverage asks:
//
//   * FooterCorruption — every single-byte flip (the full matrix) makes
//     the footer decode to nullopt; on disk that degrades the segment to
//     a full scan with identical query results, never an error.
//   * CompressedReplay — a gzip-compressed journal replays bit-identical
//     to its raw twin, through detection at shards 1 and 4.
//   * Retention — deletes oldest-first, never the active segment, and
//     the surviving suffix stays contiguously readable.
//   * QuerySkips — a selective predicate over a multi-segment journal
//     scans only the footer-matching segments (the acceptance
//     scan-counter assertion).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "artemis/config.hpp"
#include "journal/index.hpp"
#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "journal/writer.hpp"
#include "pipeline/sharded_detector.hpp"
#include "util/rng.hpp"

namespace artemis::journal {
namespace {

namespace fs = std::filesystem;

std::string make_temp_dir(const char* tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("artemis_jquery_") + tag + "_" +
                     info->test_suite_name() + "_" + info->name();
  std::replace(name.begin(), name.end(), '/', '_');
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

feeds::Observation make_obs(const std::string& prefix, bgp::Asn origin,
                            const std::string& source, double event_s,
                            feeds::ObservationType type =
                                feeds::ObservationType::kAnnouncement) {
  feeds::Observation obs;
  obs.type = type;
  obs.source = source;
  obs.vantage = 9;
  obs.prefix = net::Prefix::must_parse(prefix);
  if (type != feeds::ObservationType::kWithdrawal) {
    obs.attrs.as_path = bgp::AsPath({9, 3356, origin});
  }
  obs.event_time = SimTime::at_seconds(event_s);
  obs.delivered_at = obs.event_time + SimDuration::seconds(1.0);
  return obs;
}

/// A deterministic multi-segment journal: batch k (= segment k, via
/// segment_bytes = 1 so every batch rotates) announces prefixes under
/// 10.<k>.0.0/16, from source "src<k>", in the event window
/// [1000 + 100k, 1000 + 100k + 30] seconds.
std::vector<std::vector<feeds::Observation>> segmented_batches(int segments) {
  std::vector<std::vector<feeds::Observation>> batches;
  for (int k = 0; k < segments; ++k) {
    std::vector<feeds::Observation> batch;
    const std::string base = "10." + std::to_string(k);
    const std::string source = "src" + std::to_string(k);
    const double t0 = 1000.0 + 100.0 * k;
    batch.push_back(make_obs(base + ".0.0/16", 65001, source, t0));
    batch.push_back(make_obs(base + ".1.0/24", 666, source, t0 + 10));
    batch.push_back(make_obs(base + ".1.0/24", 666, source, t0 + 10));
    batch.push_back(make_obs(base + ".2.0/24", 65001, source, t0 + 20,
                             feeds::ObservationType::kWithdrawal));
    batch.push_back(make_obs(base + ".3.0/25", 777, source, t0 + 30));
    batches.push_back(std::move(batch));
  }
  return batches;
}

void write_batches(const std::string& dir,
                   const std::vector<std::vector<feeds::Observation>>& batches,
                   JournalWriterOptions options = {}) {
  options.segment_bytes = 1;  // rotate after every batch: batch == segment
  JournalWriter writer(dir, options);
  for (const auto& batch : batches) {
    writer.append_batch({batch.data(), batch.size()});
  }
  writer.close();
}

std::vector<feeds::Observation> read_filtered(const std::string& dir,
                                              const QueryFilter& filter,
                                              std::uint64_t* scanned = nullptr,
                                              std::uint64_t* skipped = nullptr) {
  JournalReader reader(dir);
  reader.set_filter(filter);
  std::vector<feeds::Observation> out;
  pipeline::ObservationBatch buffer;
  while (reader.read_batch(buffer, 64) > 0) {
    for (const auto& obs : buffer) out.push_back(obs);
  }
  if (scanned != nullptr) *scanned = reader.segments_scanned();
  if (skipped != nullptr) *skipped = reader.segments_skipped();
  return out;
}

void expect_same_observation(const feeds::Observation& a,
                             const feeds::Observation& b, std::size_t index) {
  EXPECT_EQ(a.type, b.type) << "record " << index;
  EXPECT_EQ(a.source, b.source) << "record " << index;
  EXPECT_EQ(a.vantage, b.vantage) << "record " << index;
  EXPECT_EQ(a.prefix, b.prefix) << "record " << index;
  EXPECT_EQ(a.attrs, b.attrs) << "record " << index;
  EXPECT_EQ(a.event_time, b.event_time) << "record " << index;
  EXPECT_EQ(a.delivered_at, b.delivered_at) << "record " << index;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// ------------------------------------------------------ footer wire form

TEST(SegmentIndexTest, EncodeDecodeRoundTrip) {
  SegmentIndexBuilder builder;
  builder.reset(42);
  std::vector<feeds::Observation> obs = {
      make_obs("10.0.0.0/16", 65001, "ris-live", 1000.0),
      make_obs("10.1.2.0/24", 666, "bgpmon", 990.0),
      make_obs("2001:db8::/32", 65003, "ris-live", 1010.0),
  };
  for (const auto& o : obs) builder.add(o);
  const SegmentIndex index =
      builder.finalize({"ris-live", "bgpmon"});

  const auto bytes = index.encode();
  const auto decoded = SegmentIndex::decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first_seq, 42u);
  EXPECT_EQ(decoded->record_count, 3u);
  EXPECT_EQ(decoded->min_event_us, SimTime::at_seconds(990.0).as_micros());
  EXPECT_EQ(decoded->max_event_us, SimTime::at_seconds(1010.0).as_micros());
  EXPECT_EQ(decoded->sources, (std::vector<std::string>{"ris-live", "bgpmon"}));
  EXPECT_EQ(decoded->bloom_bits, index.bloom_bits);
  EXPECT_EQ(decoded->bloom, index.bloom);
  EXPECT_TRUE(decoded->contains_source("bgpmon"));
  EXPECT_FALSE(decoded->contains_source("periscope"));
}

TEST(SegmentIndexTest, BloomAnswersOverlapNotEquality) {
  SegmentIndexBuilder builder;
  builder.reset(0);
  builder.add(make_obs("10.1.2.0/24", 666, "s", 1000.0));
  const SegmentIndex index = builder.finalize({"s"});

  // Exact, covering, and covered query prefixes must all answer "maybe".
  EXPECT_TRUE(index.may_contain_prefix(net::Prefix::must_parse("10.1.2.0/24")));
  EXPECT_TRUE(index.may_contain_prefix(net::Prefix::must_parse("10.1.0.0/16")));
  EXPECT_TRUE(index.may_contain_prefix(net::Prefix::must_parse("10.1.2.128/25")));
  EXPECT_TRUE(index.may_contain_prefix(net::Prefix::must_parse("10.0.0.0/8")));
  // Disjoint prefixes differing within the first rung are ruled out.
  EXPECT_FALSE(index.may_contain_prefix(net::Prefix::must_parse("11.0.0.0/8")));
  EXPECT_FALSE(index.may_contain_prefix(net::Prefix::must_parse("192.0.2.0/24")));
  // A disjoint SIBLING sharing the record's rung-8 ancestor answers
  // "maybe": the rung-8 hit alone keeps overlap with a hypothetical
  // band-[8,16) covering record possible, so ruling it out would be
  // unsound. This is the filter's inherent (allowed) false positive.
  EXPECT_TRUE(index.may_contain_prefix(net::Prefix::must_parse("10.2.0.0/16")));
  // A query shorter than the first ladder rung cannot be ruled out.
  EXPECT_TRUE(index.may_contain_prefix(net::Prefix::must_parse("0.0.0.0/4")));
  // Nor can any same-family query once a record sits below the first
  // rung (the marker key forces a scan).
  SegmentIndexBuilder shorty;
  shorty.reset(0);
  shorty.add(make_obs("16.0.0.0/6", 666, "s", 1000.0));
  const SegmentIndex marker = shorty.finalize({"s"});
  EXPECT_TRUE(marker.may_contain_prefix(net::Prefix::must_parse("192.0.2.0/24")));
}

TEST(SegmentIndexTest, EverySingleByteFlipFailsDecode) {
  SegmentIndexBuilder builder;
  builder.reset(7);
  for (int i = 0; i < 64; ++i) {
    builder.add(make_obs("10.0." + std::to_string(i) + ".0/24", 666, "s",
                         1000.0 + i));
  }
  auto bytes = builder.finalize({"s"}).encode();
  ASSERT_TRUE(SegmentIndex::decode(bytes.data(), bytes.size()).has_value());

  // The full corruption matrix: any one flipped byte — magic, version,
  // body, Bloom words, CRC itself — must yield nullopt (advisory
  // metadata fails closed to "full scan"), never a throw.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x5A;
    EXPECT_FALSE(SegmentIndex::decode(bytes.data(), bytes.size()).has_value())
        << "flipped byte " << i;
    bytes[i] ^= 0x5A;
  }
  // Every truncation, down to the empty file.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(SegmentIndex::decode(bytes.data(), len).has_value())
        << "truncated to " << len;
  }
  // A foreign version with a VALID checksum is still ignored by name of
  // the contract (footers are advisory; future versions full-scan).
  auto foreign = bytes;
  foreign[kIndexMagic.size()] ^= 0xFF;
  const std::uint32_t crc = crc32(foreign.data(), foreign.size() - 4);
  for (int b = 0; b < 4; ++b) {
    foreign[foreign.size() - 4 + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(crc >> (8 * b));
  }
  EXPECT_FALSE(SegmentIndex::decode(foreign.data(), foreign.size()).has_value());
}

// --------------------------------------------- footer corruption on disk

TEST(FooterCorruptionTest, CorruptFooterDegradesToFullScanNotError) {
  const std::string dir = make_temp_dir("corrupt");
  const auto batches = segmented_batches(4);
  write_batches(dir, batches);

  // Prefix + time window (every segment's prefixes share the rung-8
  // ancestor 10/8, so the window is what makes footers selective).
  QueryFilter filter;
  filter.prefix = net::Prefix::must_parse("10.2.0.0/16");
  filter.min_event_us = SimTime::at_seconds(1200.0).as_micros();
  filter.max_event_us = SimTime::at_seconds(1230.0).as_micros();

  std::uint64_t scanned = 0;
  std::uint64_t skipped = 0;
  const auto pruned = read_filtered(dir, filter, &scanned, &skipped);
  ASSERT_EQ(pruned.size(), 5u);  // all of segment 2 sits under 10.2.0.0/16
  EXPECT_EQ(scanned, 1u);
  EXPECT_EQ(skipped, 3u);

  // Flip one byte in the middle of every footer: queries must return the
  // SAME records, with zero segments skipped and no error raised.
  for (int k = 0; k < 4; ++k) {
    const std::string path = index_path(dir, static_cast<std::uint64_t>(k) * 5);
    ASSERT_TRUE(fs::exists(path)) << path;
    auto bytes = read_file(path);
    bytes[bytes.size() / 2] ^= 0x01;
    write_file(path, bytes);
  }
  const auto full = read_filtered(dir, filter, &scanned, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(scanned, 4u);
  ASSERT_EQ(full.size(), pruned.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    expect_same_observation(full[i], pruned[i], i);
  }

  // Missing footers: same degradation.
  for (int k = 0; k < 4; ++k) {
    fs::remove(index_path(dir, static_cast<std::uint64_t>(k) * 5));
  }
  const auto absent = read_filtered(dir, filter, &scanned, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(absent.size(), pruned.size());

  // build_missing_footers restores the pruning (the rebuilt footers are
  // byte-identical to the writer's — one deterministic encoder).
  EXPECT_EQ(build_missing_footers(dir), 4u);
  const auto rebuilt = read_filtered(dir, filter, &scanned, &skipped);
  EXPECT_EQ(skipped, 3u);
  ASSERT_EQ(rebuilt.size(), pruned.size());
}

// ----------------------------------------------- the acceptance criterion

TEST(QuerySkipTest, SelectivePredicateScansOnlyFooterMatchingSegments) {
  const std::string dir = make_temp_dir("skip");
  const auto batches = segmented_batches(8);
  write_batches(dir, batches);

  // Prefix + time-window predicate confined to segment 5 (the lower
  // bound also excludes the covering 10.5.0.0/16 announce at t=1500 s).
  QueryFilter filter;
  filter.prefix = net::Prefix::must_parse("10.5.1.0/24");
  filter.min_event_us = SimTime::at_seconds(1000.0 + 505.0).as_micros();
  filter.max_event_us = SimTime::at_seconds(1000.0 + 560.0).as_micros();

  std::uint64_t scanned = 0;
  std::uint64_t skipped = 0;
  const auto matches = read_filtered(dir, filter, &scanned, &skipped);
  EXPECT_EQ(scanned, 1u) << "footer pruning must open only segment 5";
  EXPECT_EQ(skipped, 7u);
  ASSERT_EQ(matches.size(), 2u);  // the duplicated 10.5.1.0/24 burst
  for (const auto& obs : matches) {
    EXPECT_EQ(obs.prefix, net::Prefix::must_parse("10.5.1.0/24"));
  }

  // Same answer as brute force: trivial filter + manual predicate.
  JournalReader reader(dir);
  pipeline::ObservationBatch buffer;
  std::vector<feeds::Observation> brute;
  while (reader.read_batch(buffer, 64) > 0) {
    for (const auto& obs : buffer) {
      if (filter.matches(obs)) brute.push_back(obs);
    }
  }
  ASSERT_EQ(brute.size(), matches.size());
  for (std::size_t i = 0; i < brute.size(); ++i) {
    expect_same_observation(brute[i], matches[i], i);
  }

  // Source predicate: exactly one segment holds "src3".
  QueryFilter by_source;
  by_source.source = "src3";
  const auto sourced = read_filtered(dir, by_source, &scanned, &skipped);
  EXPECT_EQ(scanned, 1u);
  EXPECT_EQ(skipped, 7u);
  EXPECT_EQ(sourced.size(), batches[3].size());
}

TEST(QuerySkipTest, SkipPreservesSequenceGapDetection) {
  const std::string dir = make_temp_dir("gap");
  write_batches(dir, segmented_batches(4));
  // Remove a MIDDLE segment (and its footer): a filtered read that skips
  // other segments must still detect the gap by sequence accounting.
  fs::remove(dir + "/seg-0000000000000005.aj");
  fs::remove(index_path(dir, 5));
  QueryFilter filter;
  filter.prefix = net::Prefix::must_parse("10.3.0.0/16");
  EXPECT_THROW(read_filtered(dir, filter), JournalError);
}

// ------------------------------------------- ownership projection term

TEST(AnyPrefixesTest, RecordTermMatchesAnyOverlapAndAndsWithOtherTerms) {
  QueryFilter filter;
  filter.any_prefixes.push_back(net::Prefix::must_parse("10.1.0.0/16"));
  filter.any_prefixes.push_back(net::Prefix::must_parse("192.0.2.0/24"));
  EXPECT_FALSE(filter.is_trivial());

  // Overlap with AT LEAST ONE candidate: covered, covering, or exact.
  EXPECT_TRUE(filter.matches(make_obs("10.1.2.0/24", 666, "s", 1000.0)));
  EXPECT_TRUE(filter.matches(make_obs("10.0.0.0/8", 666, "s", 1000.0)));
  EXPECT_TRUE(filter.matches(make_obs("192.0.2.128/25", 666, "s", 1000.0)));
  // No candidate overlaps: the record is filtered out.
  EXPECT_FALSE(filter.matches(make_obs("10.2.0.0/16", 666, "s", 1000.0)));
  EXPECT_FALSE(filter.matches(make_obs("198.51.100.0/24", 666, "s", 1000.0)));

  // ANDed with every other term, not ORed: a type term still applies to
  // records that pass the any-overlap test.
  filter.type = feeds::ObservationType::kWithdrawal;
  EXPECT_FALSE(filter.matches(make_obs("10.1.2.0/24", 666, "s", 1000.0)));
  EXPECT_TRUE(filter.matches(make_obs("10.1.2.0/24", 666, "s", 1000.0,
                                      feeds::ObservationType::kWithdrawal)));
}

TEST(AnyPrefixesTest, FooterPrunesSegmentsNoCandidateCanTouch) {
  const std::string dir = make_temp_dir("anyprefix");
  // Three single-batch segments in DISJOINT first-rung space, so the
  // Bloom ladder can separate them (a shared /8 answers "maybe"
  // everywhere, by design — see BloomAnswersOverlapNotEquality).
  std::vector<std::vector<feeds::Observation>> batches(3);
  batches[0].push_back(make_obs("20.1.0.0/16", 65001, "s", 1000.0));
  batches[0].push_back(make_obs("20.1.2.0/24", 666, "s", 1001.0));
  batches[1].push_back(make_obs("30.1.0.0/16", 65001, "s", 1002.0));
  batches[2].push_back(make_obs("40.1.0.0/16", 65001, "s", 1003.0));
  batches[2].push_back(make_obs("40.9.9.0/24", 666, "s", 1004.0));
  write_batches(dir, batches);

  // Candidates touching segments 0 and 2: segment 1 is the only one
  // every candidate provably misses, so it alone is skipped.
  QueryFilter filter;
  filter.any_prefixes.push_back(net::Prefix::must_parse("20.1.2.0/24"));
  filter.any_prefixes.push_back(net::Prefix::must_parse("40.0.0.0/12"));
  std::uint64_t scanned = 0;
  std::uint64_t skipped = 0;
  const auto matches = read_filtered(dir, filter, &scanned, &skipped);
  EXPECT_EQ(scanned, 2u);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(matches.size(), 4u);
  for (const auto& obs : matches) {
    EXPECT_NE(obs.prefix.to_string().substr(0, 3), "30.")
        << "segment 1's records must not leak through the record filter";
  }

  // Ownership of space no footer can contain skips EVERY segment
  // without decoding a record (the journal_alerts --owned projection).
  QueryFilter absent;
  absent.any_prefixes.push_back(net::Prefix::must_parse("172.16.0.0/16"));
  const auto none = read_filtered(dir, absent, &scanned, &skipped);
  EXPECT_EQ(scanned, 0u);
  EXPECT_EQ(skipped, 3u);
  EXPECT_TRUE(none.empty());
}

// ------------------------------------------------- compressed replay

#ifdef ARTEMIS_HAVE_ZLIB
TEST(CompressedJournalTest, ReplayIsBitIdenticalToRawAtShards1And4) {
  const std::string raw_dir = make_temp_dir("raw");
  const std::string gz_dir = make_temp_dir("gz");
  const auto batches = segmented_batches(6);
  write_batches(raw_dir, batches);
  JournalWriterOptions gz_options;
  gz_options.compress_segments = true;
  write_batches(gz_dir, batches, gz_options);

  // Every sealed segment really is stored compressed.
  std::size_t gz_segments = 0;
  for (const auto& entry : fs::directory_iterator(gz_dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_FALSE(is_raw_segment_file_name(name)) << name;
    if (is_compressed_segment_file_name(name)) ++gz_segments;
  }
  EXPECT_EQ(gz_segments, 6u);

  // The observation streams are identical record for record.
  JournalReader raw_reader(raw_dir);
  JournalReader gz_reader(gz_dir);
  pipeline::ObservationBatch a;
  pipeline::ObservationBatch b;
  std::vector<feeds::Observation> raw_all;
  std::vector<feeds::Observation> gz_all;
  while (raw_reader.read_batch(a, 64) > 0) {
    for (const auto& obs : a) raw_all.push_back(obs);
  }
  while (gz_reader.read_batch(b, 64) > 0) {
    for (const auto& obs : b) gz_all.push_back(obs);
  }
  ASSERT_EQ(raw_all.size(), gz_all.size());
  for (std::size_t i = 0; i < raw_all.size(); ++i) {
    expect_same_observation(raw_all[i], gz_all[i], i);
  }
  EXPECT_FALSE(gz_reader.truncated_tail());

  // Detection over the compressed journal, at shards 1 and 4, matches
  // detection over the raw journal bit for bit.
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.1.0.0/16");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  const auto alerts_of = [&config](const std::string& dir, std::size_t shards) {
    pipeline::ShardedDetectorOptions options;
    options.shards = shards;
    pipeline::ShardedDetector detector(config, options);
    JournalReader reader(dir);
    pipeline::ObservationBatch batch;
    while (reader.read_batch(batch, 97) > 0) detector.submit_batch(batch.view());
    detector.flush();
    std::vector<std::string> lines;
    for (const auto& alert : detector.merged_alerts()) {
      lines.push_back(alert.to_string());
    }
    return lines;
  };
  const auto reference = alerts_of(raw_dir, 1);
  ASSERT_FALSE(reference.empty());  // the 10.1.1.0/24 origin-666 hijack
  EXPECT_EQ(alerts_of(gz_dir, 1), reference);
  EXPECT_EQ(alerts_of(gz_dir, 4), reference);
}

TEST(CompressedJournalTest, WriterResumesACompressedJournal) {
  const std::string dir = make_temp_dir("resume");
  const auto batches = segmented_batches(3);
  JournalWriterOptions options;
  options.compress_segments = true;
  write_batches(dir, batches, options);

  // Restart and append one more batch; the journal stays one contiguous
  // sequence across the compressed/raw boundary.
  const auto more = segmented_batches(4);
  {
    options.segment_bytes = 1;
    JournalWriter writer(dir, options);
    EXPECT_EQ(writer.next_sequence(), 15u);
    writer.append_batch({more[3].data(), more[3].size()});
    writer.close();
  }
  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  std::size_t total = 0;
  while (reader.read_batch(batch, 64) > 0) total += batch.size();
  EXPECT_EQ(total, 20u);
  EXPECT_FALSE(reader.truncated_tail());
}
#endif  // ARTEMIS_HAVE_ZLIB

// ------------------------------------------------------------ retention

TEST(RetentionTest, DeletesOldestFirstAndNeverTheActiveSegment) {
  const std::string dir = make_temp_dir("retain");
  const auto batches = segmented_batches(8);
  JournalWriterOptions options;
  options.segment_bytes = 1;
  options.retention.max_segments = 2;
  JournalWriter writer(dir, options);
  for (const auto& batch : batches) {
    writer.append_batch({batch.data(), batch.size()});
  }
  // Before close: every batch rotated into its own sealed segment, 6 of
  // the 8 were reaped, and the ACTIVE (empty continuation) segment at
  // first_seq 40 is untouched by retention.
  writer.flush();
  EXPECT_TRUE(fs::exists(dir + "/seg-0000000000000028.aj"));
  EXPECT_EQ(writer.segments_deleted(), 6u);
  writer.close();  // reclaims the empty continuation, nothing new to reap
  EXPECT_EQ(writer.segments_deleted(), 6u);

  // Survivors are the NEWEST two segments, contiguously readable.
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (is_segment_file_name(name)) segs.push_back(name);
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], "seg-000000000000001e.aj");  // batch 6, first_seq 30
  EXPECT_EQ(segs[1], "seg-0000000000000023.aj");  // batch 7, first_seq 35

  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  std::vector<feeds::Observation> tail;
  while (reader.read_batch(batch, 64) > 0) {
    for (const auto& obs : batch) tail.push_back(obs);
  }
  ASSERT_EQ(tail.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    expect_same_observation(tail[i], batches[6][i], i);
    expect_same_observation(tail[5 + i], batches[7][i], 5 + i);
  }
}

TEST(RetentionTest, MaxAgeReapsOnlyProvablyOldSegments) {
  const std::string dir = make_temp_dir("age");
  const auto batches = segmented_batches(6);  // 100 s of events per segment
  JournalWriterOptions options;
  options.segment_bytes = 1;
  options.retention.max_age_us = 250'000'000;  // 250 s
  JournalWriter writer(dir, options);
  for (const auto& batch : batches) {
    writer.append_batch({batch.data(), batch.size()});
  }
  writer.close();
  EXPECT_GT(writer.segments_deleted(), 0u);
  JournalReader reader(dir);  // the survivors must still read cleanly
  pipeline::ObservationBatch batch;
  std::size_t total = 0;
  while (reader.read_batch(batch, 64) > 0) total += batch.size();
  EXPECT_GE(total, 10u);       // the newest ~250s of history survives
  EXPECT_LT(total, 30u);       // and the oldest segments are gone
}

TEST(RetentionTest, ParseRetentionPolicySpellings) {
  JournalWriterOptions options;
  EXPECT_TRUE(parse_retention_policy("segments=48", options));
  EXPECT_EQ(options.retention.max_segments, 48u);
  EXPECT_TRUE(parse_retention_policy("bytes=2g,age=24h", options));
  EXPECT_EQ(options.retention.max_bytes, 2ull << 30);
  EXPECT_EQ(options.retention.max_age_us, 86'400'000'000ll);
  EXPECT_EQ(options.retention.max_segments, 0u);  // replaced, not merged
  EXPECT_TRUE(parse_retention_policy("segments=2,bytes=512k,age=90m", options));
  EXPECT_EQ(retention_policy_to_string(options), "segments=2,bytes=524288,age=5400s");
  EXPECT_TRUE(parse_retention_policy("none", options));
  EXPECT_FALSE(options.retention.enabled());
  EXPECT_EQ(retention_policy_to_string(options), "none");
  for (const char* bad : {"", "segments=0", "bytes=", "age=5w", "bananas=3",
                          "segments=2,,age=1h", "segments=-1", "age=1h2"}) {
    EXPECT_FALSE(parse_retention_policy(bad, options)) << bad;
  }
}

// ----------------------------------------------------- close() seals

TEST(WriterSealTest, CloseWritesFooterForFinalPartialSegment) {
  const std::string dir = make_temp_dir("seal");
  const auto batches = segmented_batches(1);
  {
    JournalWriter writer(dir);  // default 64 MB segments: never rotates
    writer.append_batch({batches[0].data(), batches[0].size()});
    writer.close();
  }
  const auto footer = load_segment_index(index_path(dir, 0));
  ASSERT_TRUE(footer.has_value());
  EXPECT_EQ(footer->first_seq, 0u);
  EXPECT_EQ(footer->record_count, 5u);
  EXPECT_EQ(footer->sources, std::vector<std::string>{"src0"});
  EXPECT_EQ(footer->min_event_us, SimTime::at_seconds(1000.0).as_micros());
  EXPECT_EQ(footer->max_event_us, SimTime::at_seconds(1030.0).as_micros());
  EXPECT_TRUE(
      footer->may_contain_prefix(net::Prefix::must_parse("10.0.1.0/24")));
}

// ----------------------------------------------------- predicate replay

TEST(ReplayFilterTest, ReplayFeedEmitsOnlyMatchingRecords) {
  const std::string dir = make_temp_dir("replayfilter");
  write_batches(dir, segmented_batches(4));

  JournalReader reader(dir);
  ReplayOptions options;
  options.filter.origin = 666;
  ReplayFeed feed(reader, options);
  std::vector<feeds::Observation> seen;
  const std::uint64_t replayed =
      feed.replay_all([&seen](std::span<const feeds::Observation> batch) {
        seen.insert(seen.end(), batch.begin(), batch.end());
      });
  EXPECT_EQ(replayed, 8u);  // two origin-666 records per segment
  ASSERT_EQ(seen.size(), 8u);
  for (const auto& obs : seen) EXPECT_EQ(obs.origin_as(), 666u);
}

}  // namespace
}  // namespace artemis::journal

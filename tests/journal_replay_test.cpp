// Record/replay determinism (the PR's headline invariant): a scenario
// run with the journal tap enabled, then replayed from disk into a fresh
// app, yields bit-identical merged_alerts() for any shard count — and a
// crash-recovery replay (writer torn mid-segment) rebuilds identical
// detection state from every record that survived.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "artemis/detection.hpp"
#include "artemis/scenario.hpp"
#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "journal/writer.hpp"
#include "pipeline/sharded_detector.hpp"
#include "util/rng.hpp"

namespace artemis::journal {
namespace {

namespace fs = std::filesystem;

std::string make_temp_dir(const char* tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "artemis_replay_" + tag + "_" +
                          info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

constexpr std::string_view kRecordedScenario = R"({
  "seed": 7,
  "topology": {"tier1": 4, "tier2": 20, "stubs": 80},
  "network": {"mrai_s": 10, "max_prefix_len": 24},
  "experiment": {
    "victim_prefix": "10.0.0.0/23",
    "victim": "stub:0",
    "attacker": "stub:-1",
    "hijack_at_s": 600,
    "horizon_min": 15
  }
})";

void expect_same_alert(const core::HijackAlert& a, const core::HijackAlert& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.owned_prefix, b.owned_prefix);
  EXPECT_EQ(a.observed_prefix, b.observed_prefix);
  EXPECT_EQ(a.offender, b.offender);
  EXPECT_EQ(a.observed_path.to_string(), b.observed_path.to_string());
  EXPECT_EQ(a.vantage, b.vantage);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.event_time, b.event_time);
  EXPECT_EQ(a.detected_at, b.detected_at);
}

TEST(JournalReplayTest, RecordedScenarioReplaysBitIdentically) {
  const std::string dir = make_temp_dir("scenario");
  core::Scenario scenario = core::load_scenario_text(kRecordedScenario);
  scenario.experiment.app.journal_dir = dir;

  // The recording run: live simulation with the journal tap on. Capture
  // the recording app's own view for the comparison before it goes away.
  std::vector<core::HijackAlert> recorded_alerts;
  std::uint64_t recorded_observations = 0;
  std::map<std::string, std::uint64_t> recorded_by_source;
  {
    Rng rng(scenario.seed);
    core::HijackExperiment experiment(scenario.graph, scenario.network,
                                      scenario.experiment, rng.fork("experiment"));
    const auto result = experiment.run();
    ASSERT_TRUE(result.detected_at.has_value());
    recorded_alerts = experiment.app().sharded_detection().merged_alerts();
    recorded_observations = experiment.app().hub().total_observations();
    recorded_by_source = experiment.app().hub().per_source_counts();
    ASSERT_NE(experiment.app().journal_writer(), nullptr);
    experiment.app().journal_writer()->close();
    EXPECT_EQ(experiment.app().journal_writer()->records_written(),
              recorded_observations);
  }
  ASSERT_FALSE(recorded_alerts.empty());

  // Replay into fresh apps at shard counts 1 and 4; both must reproduce
  // the recording's merged alerts bit-for-bit (and the hub statistics).
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    core::ReplayRunOptions options;
    options.detection_shards = shards;
    const auto replayed = core::replay_scenario_journal(scenario, dir, options);
    EXPECT_EQ(replayed.at("replayed").as_int(),
              static_cast<std::int64_t>(recorded_observations));
    EXPECT_FALSE(replayed.at("truncated_tail").as_bool());

    // Independent structural check against the JSON view.
    const auto& alerts = replayed.at("alerts").as_array();
    ASSERT_EQ(alerts.size(), recorded_alerts.size()) << "shards=" << shards;

    // Full-fidelity check at the object level.
    Rng rng(scenario.seed);
    auto params = scenario.experiment;
    params.app.journal_dir.clear();
    params.app.detection_shards = shards;
    core::HijackExperiment fresh(scenario.graph, scenario.network, params,
                                 rng.fork("experiment"));
    JournalReader reader(dir);
    ReplayFeed feed(reader);
    feed.replay_all(fresh.app().hub());
    const auto fresh_alerts = fresh.app().sharded_detection().merged_alerts();
    ASSERT_EQ(fresh_alerts.size(), recorded_alerts.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < recorded_alerts.size(); ++i) {
      expect_same_alert(fresh_alerts[i], recorded_alerts[i]);
    }
    EXPECT_EQ(fresh.app().hub().total_observations(), recorded_observations);
    EXPECT_EQ(fresh.app().hub().per_source_counts(), recorded_by_source);
    // Replay drives mitigation too: the same first alert, the same plan.
    EXPECT_EQ(fresh.app().mitigation().records().empty(), false);
  }
}

TEST(JournalReplayTest, TimeWarpedReplayMatchesAndCompressesTheTimeline) {
  const std::string dir = make_temp_dir("warp");
  core::Scenario scenario = core::load_scenario_text(kRecordedScenario);
  scenario.experiment.app.journal_dir = dir;
  std::vector<core::HijackAlert> recorded_alerts;
  {
    Rng rng(scenario.seed);
    core::HijackExperiment experiment(scenario.graph, scenario.network,
                                      scenario.experiment, rng.fork("experiment"));
    experiment.run();
    recorded_alerts = experiment.app().sharded_detection().merged_alerts();
    experiment.app().journal_writer()->close();
  }
  ASSERT_FALSE(recorded_alerts.empty());

  constexpr double kWarp = 8.0;
  auto params = scenario.experiment;
  params.app.journal_dir.clear();
  params.app.detection_shards = 4;
  // The restarted monitor: a bare app (no live feeds) whose only
  // observation source is the journal, paced through the sim clock.
  const auto helpers = core::recruit_helpers(scenario.graph, params);
  auto config = core::build_experiment_config(scenario.graph, params, helpers);
  Rng rng(scenario.seed);
  sim::Network network(scenario.graph, scenario.network, rng.fork("network"));
  core::ArtemisApp app(std::move(config), network, params.victim, params.app);
  JournalReader reader(dir);
  ReplayOptions options;
  options.speedup = kWarp;
  ReplayFeed feed(reader, options);
  auto& sim = network.simulator();
  feed.schedule(sim, app.hub().batch_inlet());
  sim.run_all();

  const auto fresh_alerts = app.sharded_detection().merged_alerts();
  ASSERT_EQ(fresh_alerts.size(), recorded_alerts.size());
  for (std::size_t i = 0; i < recorded_alerts.size(); ++i) {
    // The observation *content* (event/delivery stamps) replays verbatim;
    // only the wall position on the replay simulator is warped.
    expect_same_alert(fresh_alerts[i], recorded_alerts[i]);
  }
  // The replay clock ran ~kWarp× compressed: the last scheduled emission
  // sits at recorded/Warp (alert handlers saw recorded timestamps).
  EXPECT_LE(sim.now().as_micros(),
            recorded_alerts.back().detected_at.as_micros());
  EXPECT_GT(feed.replayed(), 0u);
}

TEST(JournalReplayTest, CrashRecoveryRebuildsIdenticalDetectionState) {
  const std::string dir = make_temp_dir("crash");
  core::Scenario scenario = core::load_scenario_text(kRecordedScenario);
  scenario.experiment.app.journal_dir = dir;
  {
    Rng rng(scenario.seed);
    core::HijackExperiment experiment(scenario.graph, scenario.network,
                                      scenario.experiment, rng.fork("experiment"));
    experiment.run();
    experiment.app().journal_writer()->close();
  }

  // Simulate the crash: tear bytes off the journal's tail mid-record.
  // (Record-bearing segments only — the directory also holds the framing
  // and index sidecars, which are not the journal's tail.)
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (is_segment_file_name(entry.path().filename().string())) {
      segments.push_back(entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  const std::string& last = segments.back();
  const auto size = fs::file_size(last);
  ASSERT_GT(size, kSegmentHeaderSize + 40);
  fs::resize_file(last, size - 13);

  // Recovery replay: every complete record is delivered, in order.
  JournalReader recovery(dir);
  pipeline::ObservationBatch batch;
  std::vector<feeds::Observation> recovered;
  while (recovery.read_batch(batch, 256) > 0) {
    for (const auto& obs : batch) recovered.push_back(obs);
  }
  EXPECT_TRUE(recovery.truncated_tail());
  ASSERT_GT(recovered.size(), 0u);

  // The restarted monitor: rebuild detection state by replay through the
  // sharded pipeline. Reference: a service fed the same recovered stream
  // directly. Both must agree bit-identically — same alerts, same dedup
  // counters, same per-source first-seen times.
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = scenario.experiment.victim_prefix;
  owned.legitimate_origins.insert(scenario.experiment.victim);
  config.add_owned(std::move(owned));

  core::DetectionService reference(config);
  for (const auto& obs : recovered) reference.process(obs);

  pipeline::ShardedDetectorOptions sharded_options;
  sharded_options.shards = 4;
  pipeline::ShardedDetector rebuilt(config, sharded_options);
  JournalReader rebuild_reader(dir);
  ReplayFeed rebuild_feed(rebuild_reader);
  rebuild_feed.replay_all(
      [&rebuilt](std::span<const feeds::Observation> span) {
        rebuilt.submit_batch(span);
      });

  EXPECT_EQ(rebuilt.observations_processed(), recovered.size());
  const auto rebuilt_alerts = rebuilt.merged_alerts();
  ASSERT_EQ(rebuilt_alerts.size(), reference.alerts().size());
  for (std::size_t i = 0; i < rebuilt_alerts.size(); ++i) {
    expect_same_alert(rebuilt_alerts[i], reference.alerts()[i]);
    const auto key = reference.alerts()[i].key();
    EXPECT_EQ(rebuilt.observation_count(key), reference.observation_count(key));
    const auto* ref_seen = reference.first_seen_by_source(key);
    const auto* new_seen = rebuilt.first_seen_by_source(key);
    ASSERT_NE(ref_seen, nullptr);
    ASSERT_NE(new_seen, nullptr);
    EXPECT_EQ(*ref_seen, *new_seen);
  }
}

TEST(JournalReplayTest, ReplayChunkSizeDoesNotChangeTheOutcome) {
  // Journal chunking is a replay parameter, not a semantic one: any
  // batch_size yields the same detection state (the batch-vs-loop oracle
  // extended through the journal layer).
  const std::string dir = make_temp_dir("chunks");
  const int kCount = 700;
  std::vector<feeds::Observation> stream;
  {
    Rng rng(5);
    double t = 100.0;
    for (int i = 0; i < kCount; ++i) {
      feeds::Observation obs;
      obs.type = feeds::ObservationType::kAnnouncement;
      obs.source = (i % 2) != 0 ? "ris-live" : "bgpmon";
      obs.vantage = 9;
      obs.prefix = (i % 5) == 0 ? net::Prefix::must_parse("10.0.0.0/23")
                                : net::Prefix::must_parse("203.0.113.0/24");
      obs.attrs.as_path =
          bgp::AsPath({9, 3356, (i % 5) == 0 ? 666u : 65001u});
      t += 0.5;
      obs.event_time = SimTime::at_seconds(t - 5);
      obs.delivered_at = SimTime::at_seconds(t);
      stream.push_back(obs);
    }
    JournalWriter writer(dir);
    writer.append_batch(stream);
  }

  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));

  core::DetectionService reference(config);
  for (const auto& obs : stream) reference.process(obs);

  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                       std::size_t{256}, std::size_t{4096}}) {
    core::DetectionService service(config);
    JournalReader reader(dir);
    ReplayOptions options;
    options.batch_size = batch_size;
    ReplayFeed feed(reader, options);
    feed.replay_all([&service](std::span<const feeds::Observation> span) {
      service.process_batch(span);
    });
    EXPECT_EQ(service.observations_processed(), reference.observations_processed());
    ASSERT_EQ(service.alerts().size(), reference.alerts().size());
    for (std::size_t i = 0; i < service.alerts().size(); ++i) {
      expect_same_alert(service.alerts()[i], reference.alerts()[i]);
    }
  }
}

TEST(JournalReplayTest, RecordedFramingReproducesExactBatchBoundaries) {
  // The framing sidecar (ISSUE 8 satellite): with use_recorded_framing,
  // replay re-emits the writer's exact append_batch boundaries, so a
  // replayed hub reproduces per-batch statistics — not just detection
  // output, which is batch-boundary independent anyway.
  const std::string dir = make_temp_dir("framing");
  const std::vector<std::size_t> recorded_sizes = {17, 1, 128, 5, 64, 3};
  std::vector<feeds::Observation> stream;
  {
    double t = 100.0;
    JournalWriter writer(dir);
    for (const std::size_t size : recorded_sizes) {
      std::vector<feeds::Observation> batch;
      for (std::size_t i = 0; i < size; ++i) {
        feeds::Observation obs;
        obs.type = feeds::ObservationType::kAnnouncement;
        obs.source = (i % 2) != 0 ? "ris-live" : "bgpmon";
        obs.vantage = 9;
        obs.prefix = net::Prefix::must_parse("203.0.113.0/24");
        obs.attrs.as_path = bgp::AsPath({9, 65001});
        t += 0.25;
        obs.event_time = SimTime::at_seconds(t - 5);
        obs.delivered_at = SimTime::at_seconds(t);
        batch.push_back(obs);
        stream.push_back(obs);
      }
      writer.append_batch(batch);
    }
    writer.close();
    EXPECT_EQ(writer.batches_written(), recorded_sizes.size());
  }
  ASSERT_TRUE(fs::exists(fs::path(dir) / std::string(kFramesFileName)));

  // Framed replay: the emitted chunking IS the recorded chunking.
  {
    JournalReader reader(dir);
    ReplayOptions options;
    options.use_recorded_framing = true;
    options.batch_size = 1024;  // would otherwise emit one big batch
    ReplayFeed feed(reader, options);
    std::vector<std::size_t> seen;
    std::uint64_t total = 0;
    feed.replay_all([&](std::span<const feeds::Observation> span) {
      seen.push_back(span.size());
      total += span.size();
    });
    EXPECT_EQ(total, stream.size());
    ASSERT_EQ(seen.size(), recorded_sizes.size());
    for (std::size_t i = 0; i < recorded_sizes.size(); ++i) {
      EXPECT_EQ(seen[i], recorded_sizes[i]) << "batch " << i;
    }
    ASSERT_EQ(feed.recorded_frames().size(), recorded_sizes.size());
  }

  // A lost sidecar is not an error: framed replay falls back to
  // batch_size chunks and still delivers every record.
  {
    fs::remove(fs::path(dir) / std::string(kFramesFileName));
    JournalReader reader(dir);
    ReplayOptions options;
    options.use_recorded_framing = true;
    options.batch_size = 100;
    ReplayFeed feed(reader, options);
    std::uint64_t total = 0;
    std::vector<std::size_t> seen;
    feed.replay_all([&](std::span<const feeds::Observation> span) {
      seen.push_back(span.size());
      total += span.size();
    });
    EXPECT_EQ(total, stream.size());
    EXPECT_TRUE(feed.recorded_frames().empty());
    EXPECT_EQ(seen.front(), 100u);  // plain fixed-size chunking
  }
}

TEST(JournalReplayTest, TornOrLyingFramesSidecarNeverLosesRecords) {
  // Crash tolerance: a torn trailing varint ends the frame list cleanly
  // (replay falls back to fixed chunks for the rest), and a sidecar that
  // over-counts (records lost to a torn segment tail) is clamped to what
  // is actually on disk. Either way every surviving record replays once.
  const std::string dir = make_temp_dir("torn_frames");
  const std::vector<std::size_t> recorded_sizes = {40, 40, 40};
  {
    double t = 100.0;
    JournalWriter writer(dir);
    for (const std::size_t size : recorded_sizes) {
      std::vector<feeds::Observation> batch;
      for (std::size_t i = 0; i < size; ++i) {
        feeds::Observation obs;
        obs.type = feeds::ObservationType::kAnnouncement;
        obs.source = "ris-live";
        obs.vantage = 9;
        obs.prefix = net::Prefix::must_parse("203.0.113.0/24");
        obs.attrs.as_path = bgp::AsPath({9, 65001});
        t += 0.25;
        obs.event_time = SimTime::at_seconds(t - 5);
        obs.delivered_at = SimTime::at_seconds(t);
        batch.push_back(obs);
      }
      writer.append_batch(batch);
    }
    writer.close();
  }
  const fs::path sidecar = fs::path(dir) / std::string(kFramesFileName);

  // Append a lying frame claiming 200 more records than exist.
  {
    std::ofstream out(sidecar, std::ios::binary | std::ios::app);
    out.put(static_cast<char>(0xC8));  // varint 200 = 0xC8 0x01
    out.put(static_cast<char>(0x01));
  }
  {
    JournalReader reader(dir);
    ReplayOptions options;
    options.use_recorded_framing = true;
    ReplayFeed feed(reader, options);
    std::uint64_t total = 0;
    feed.replay_all(
        [&](std::span<const feeds::Observation> span) { total += span.size(); });
    EXPECT_EQ(total, 120u);  // the lying frame was clamped, nothing duplicated
  }

  // Tear the sidecar mid-varint: the parser stops at the torn tail.
  {
    std::error_code ec;
    const auto size = fs::file_size(sidecar, ec);
    ASSERT_FALSE(ec);
    fs::resize_file(sidecar, size - 1, ec);
    ASSERT_FALSE(ec);
  }
  {
    JournalReader reader(dir);
    ReplayOptions options;
    options.use_recorded_framing = true;
    options.batch_size = 7;
    ReplayFeed feed(reader, options);
    std::uint64_t total = 0;
    feed.replay_all(
        [&](std::span<const feeds::Observation> span) { total += span.size(); });
    EXPECT_EQ(total, 120u);
    EXPECT_EQ(feed.recorded_frames().size(), recorded_sizes.size());
  }
}

}  // namespace
}  // namespace artemis::journal

// The observation journal (src/journal/): codec round-trip properties,
// segment framing, corruption handling and crash recovery.
//
// The load-bearing suites are the ISSUE's satellite asks:
//   * CodecRoundTrip — randomized observation batches encode→decode
//     bit-identically (rapidcheck-style seeded property).
//   * Corruption — a flipped payload byte is a CRC rejection, a
//     truncated tail is a clean recovery (never a crash), a segment
//     with a foreign format version is refused by name, a missing
//     middle segment is a sequence-gap error.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "journal/codec.hpp"
#include "journal/format.hpp"
#include "journal/reader.hpp"
#include "journal/writer.hpp"
#include "util/rng.hpp"

namespace artemis::journal {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root.
std::string make_temp_dir(const char* tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("artemis_journal_") + tag + "_" +
                     info->test_suite_name() + "_" + info->name();
  std::replace(name.begin(), name.end(), '/', '_');  // parameterized tests
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

feeds::Observation random_observation(Rng& rng, double& clock_s) {
  static const std::vector<std::string> sources = {
      "ris-live", "bgpmon", "periscope", "batch-updates", "batch-rib"};
  feeds::Observation obs;
  obs.type = static_cast<feeds::ObservationType>(rng.uniform_int(0, 2));
  obs.source = sources[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(sources.size()) - 1))];
  obs.vantage = static_cast<bgp::Asn>(rng.uniform_int(1, 1 << 20));
  if (rng.uniform_int(0, 4) == 0) {  // ~20% IPv6
    obs.prefix = net::Prefix(
        net::IpAddress::v6(rng.next_u64(), rng.next_u64()),
        static_cast<int>(rng.uniform_int(0, 128)));
  } else {
    obs.prefix = net::Prefix(
        net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
        static_cast<int>(rng.uniform_int(0, 32)));
  }
  std::vector<bgp::Asn> hops;
  const auto hop_count = rng.uniform_int(0, 6);
  for (std::int64_t i = 0; i < hop_count; ++i) {
    hops.push_back(static_cast<bgp::Asn>(rng.uniform_int(1, 1 << 24)));
  }
  obs.attrs.as_path = bgp::AsPath(std::move(hops));
  obs.attrs.origin = static_cast<bgp::Origin>(rng.uniform_int(0, 2));
  obs.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
  obs.attrs.med = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 16));
  const auto community_count = rng.uniform_int(0, 3);
  for (std::int64_t i = 0; i < community_count; ++i) {
    obs.attrs.communities.push_back(
        bgp::Community{static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
                       static_cast<std::uint16_t>(rng.uniform_int(0, 65535))});
  }
  // Mostly forward in time, occasionally backwards (stream reordering) —
  // the delta encoding must handle negative steps.
  clock_s += rng.uniform_int(0, 9) == 0 ? -2.5 : 0.5;
  obs.event_time = SimTime::at_seconds(clock_s);
  obs.delivered_at = obs.event_time + SimDuration::seconds(
                         static_cast<double>(rng.uniform_int(0, 120)));
  return obs;
}

std::vector<feeds::Observation> random_stream(std::uint64_t seed, int count) {
  Rng rng(seed);
  double clock_s = 1000.0;
  std::vector<feeds::Observation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(random_observation(rng, clock_s));
  return out;
}

void expect_same_observation(const feeds::Observation& a,
                             const feeds::Observation& b, std::size_t index) {
  EXPECT_EQ(a.type, b.type) << "record " << index;
  EXPECT_EQ(a.source, b.source) << "record " << index;
  EXPECT_EQ(a.vantage, b.vantage) << "record " << index;
  EXPECT_EQ(a.prefix, b.prefix) << "record " << index;
  EXPECT_EQ(a.attrs, b.attrs) << "record " << index;
  EXPECT_EQ(a.event_time, b.event_time) << "record " << index;
  EXPECT_EQ(a.delivered_at, b.delivered_at) << "record " << index;
}

/// Reads the whole journal in `dir` in chunks of `batch` observations.
std::vector<feeds::Observation> read_all(JournalReader& reader,
                                         std::size_t batch = 256) {
  std::vector<feeds::Observation> out;
  pipeline::ObservationBatch buffer;
  while (reader.read_batch(buffer, batch) > 0) {
    for (const auto& obs : buffer) out.push_back(obs);
  }
  return out;
}

// --------------------------------------------------- codec round-trip

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const auto stream = random_stream(GetParam(), 500);
  RecordEncoder encoder;
  RecordDecoder decoder;
  std::vector<std::uint8_t> wire;
  for (const auto& obs : stream) encoder.encode(obs, wire);

  // Walk the framed records exactly as the reader does.
  const std::uint8_t* cursor = wire.data();
  const std::uint8_t* const end = wire.data() + wire.size();
  feeds::Observation decoded;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    std::uint64_t length = 0;
    ASSERT_TRUE(get_varint(cursor, end, length)) << "record " << i;
    ASSERT_LE(length + 4, static_cast<std::uint64_t>(end - cursor));
    ASSERT_EQ(crc32(cursor, static_cast<std::size_t>(length)),
              static_cast<std::uint32_t>(cursor[length]) |
                  static_cast<std::uint32_t>(cursor[length + 1]) << 8 |
                  static_cast<std::uint32_t>(cursor[length + 2]) << 16 |
                  static_cast<std::uint32_t>(cursor[length + 3]) << 24)
        << "record " << i;
    decoder.decode(cursor, static_cast<std::size_t>(length), decoded);
    expect_same_observation(decoded, stream[i], i);
    cursor += length + 4;
  }
  EXPECT_EQ(cursor, end);
  // ~20-30 bytes per record, far below the in-memory footprint.
  EXPECT_LT(wire.size(), stream.size() * 64);
}

TEST_P(CodecRoundTrip, ResetMakesSegmentsStandalone) {
  const auto stream = random_stream(GetParam() ^ 0xfeed, 64);
  RecordEncoder encoder;
  std::vector<std::uint8_t> first;
  for (const auto& obs : stream) encoder.encode(obs, first);
  encoder.reset();
  std::vector<std::uint8_t> second;
  for (const auto& obs : stream) encoder.encode(obs, second);
  // After reset the encoder re-interns and re-bases timestamps: the two
  // encodings are byte-identical, so a decoder can start at any segment.
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 2016u));

// --------------------------------------------------- writer/reader I/O

/// Path of the single (or first) segment in `dir` (the framing sidecar
/// and other non-segment files are skipped).
std::string first_segment(const std::string& dir) {
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!is_segment_file_name(entry.path().filename().string())) continue;
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  EXPECT_FALSE(segments.empty());
  return segments.front();
}

void write_journal(const std::string& dir, const std::vector<feeds::Observation>& stream,
                   JournalWriterOptions options = {}, std::size_t chunk = 20) {
  // Modest batches: rotation is a batch-boundary event, so small
  // segment_bytes only takes effect when batches are smaller still.
  JournalWriter writer(dir, options);
  for (std::size_t i = 0; i < stream.size(); i += chunk) {
    writer.append_batch({stream.data() + i, std::min(chunk, stream.size() - i)});
  }
  writer.close();
}

TEST(JournalWriterTest, RoundTripsThroughDisk) {
  const std::string dir = make_temp_dir("roundtrip");
  const auto stream = random_stream(42, 2000);
  {
    JournalWriter writer(dir);
    // Mixed batch sizes, including span-of-one.
    std::size_t i = 0;
    while (i < stream.size()) {
      const std::size_t n = std::min<std::size_t>(1 + i % 37, stream.size() - i);
      writer.append_batch({stream.data() + i, n});
      i += n;
    }
    EXPECT_EQ(writer.records_written(), stream.size());
    EXPECT_EQ(writer.next_sequence(), stream.size());
    writer.close();
  }
  JournalReader reader(dir);
  const auto decoded = read_all(reader);
  ASSERT_EQ(decoded.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    expect_same_observation(decoded[i], stream[i], i);
  }
  EXPECT_FALSE(reader.truncated_tail());
  EXPECT_EQ(reader.records_read(), stream.size());
}

TEST(JournalWriterTest, RotatesSegmentsAndReaderStitchesThem) {
  const std::string dir = make_temp_dir("rotate");
  const auto stream = random_stream(7, 3000);
  JournalWriterOptions options;
  options.segment_bytes = 4096;  // force many rotations
  options.buffer_bytes = 512;
  {
    JournalWriter writer(dir, options);
    for (std::size_t i = 0; i < stream.size(); i += 16) {
      writer.append_batch(
          {stream.data() + i, std::min<std::size_t>(16, stream.size() - i)});
    }
    writer.close();
    EXPECT_GT(writer.segments_opened(), 5u);
  }
  JournalReader reader(dir);
  EXPECT_GT(reader.segment_count(), 5u);
  const auto decoded = read_all(reader, 100);
  ASSERT_EQ(decoded.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    expect_same_observation(decoded[i], stream[i], i);
  }
}

TEST(JournalWriterTest, CloseIsIdempotentAndAppendAfterCloseThrows) {
  const std::string dir = make_temp_dir("close");
  JournalWriter writer(dir);
  writer.append(random_stream(1, 1)[0]);
  writer.close();
  writer.close();
  EXPECT_THROW(writer.append(random_stream(2, 1)[0]), JournalError);
}

TEST(JournalWriterTest, ResumeContinuesAnExistingJournalContiguously) {
  const std::string dir = make_temp_dir("resume");
  const auto stream = random_stream(31, 600);
  const std::size_t split = 250;
  {
    JournalWriter writer(dir);
    writer.append_batch({stream.data(), split});
    writer.close();
  }
  {
    // The restarted monitor records into the same directory: the new
    // writer picks up at the next sequence, in a new segment.
    JournalWriter writer(dir);
    EXPECT_EQ(writer.next_sequence(), split);
    writer.append_batch({stream.data() + split, stream.size() - split});
    writer.close();
  }
  JournalReader reader(dir);
  EXPECT_EQ(reader.segment_count(), 2u);
  const auto decoded = read_all(reader);
  ASSERT_EQ(decoded.size(), stream.size());  // one contiguous history
  for (std::size_t i = 0; i < stream.size(); ++i) {
    expect_same_observation(decoded[i], stream[i], i);
  }
  EXPECT_FALSE(reader.truncated_tail());
}

TEST(JournalWriterTest, ResumeTruncatesTornTailThenContinues) {
  const std::string dir = make_temp_dir("resumetorn");
  const auto stream = random_stream(37, 400);
  const std::size_t split = 300;
  {
    JournalWriter writer(dir);
    writer.append_batch({stream.data(), split});
    writer.close();
  }
  // The crash: a few bytes of a record torn off the tail.
  const std::string path = first_segment(dir);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 7);
  JournalReader probe(dir);
  pipeline::ObservationBatch batch;
  std::size_t survivors = 0;
  while (probe.read_batch(batch, 64) > 0) survivors += batch.size();
  ASSERT_LT(survivors, split);
  ASSERT_TRUE(probe.truncated_tail());

  {
    JournalWriter writer(dir);  // resume: truncates the torn record away
    EXPECT_EQ(writer.next_sequence(), survivors);
    writer.append_batch({stream.data() + split, stream.size() - split});
    writer.close();
  }
  JournalReader reader(dir);
  const auto decoded = read_all(reader);
  EXPECT_FALSE(reader.truncated_tail());  // the tail was cleaned
  ASSERT_EQ(decoded.size(), survivors + (stream.size() - split));
  for (std::size_t i = 0; i < survivors; ++i) {
    expect_same_observation(decoded[i], stream[i], i);
  }
  for (std::size_t i = 0; i < stream.size() - split; ++i) {
    expect_same_observation(decoded[survivors + i], stream[split + i],
                            survivors + i);
  }
}

TEST(JournalWriterTest, StrayNonHexSegmentNamesAreIgnored) {
  // A file matching the seg-*.aj shape but with non-hex digits is not a
  // segment: resume must not try to parse it and the reader must not
  // try to decode it.
  const std::string dir = make_temp_dir("stray");
  const auto stream = random_stream(43, 20);
  write_journal(dir, stream);
  std::ofstream stray(dir + "/seg-zzzzzzzzzzzzzzzz.aj", std::ios::binary);
  stray << "not a segment";
  stray.close();

  {
    JournalWriter writer(dir);  // resume ignores the stray file
    EXPECT_EQ(writer.next_sequence(), stream.size());
  }
  JournalReader reader(dir);
  // Just the original: close() reclaims the resume's record-less
  // continuation segment, so a no-op reopen leaves the journal as found.
  EXPECT_EQ(reader.segment_count(), 1u);
  EXPECT_EQ(read_all(reader).size(), stream.size());
}

TEST(JournalWriterTest, ResumeReclaimsHeaderOnlySegment) {
  const std::string dir = make_temp_dir("resumeempty");
  { JournalWriter writer(dir); }  // header-only segment, no records
  {
    JournalWriter writer(dir);
    EXPECT_EQ(writer.next_sequence(), 0u);
    writer.append_batch(random_stream(41, 10));
  }
  JournalReader reader(dir);
  EXPECT_EQ(reader.segment_count(), 1u);
  EXPECT_EQ(read_all(reader).size(), 10u);
}

TEST(JournalReaderTest, EmptyJournalDeliversNothing) {
  const std::string dir = make_temp_dir("empty");
  {
    JournalWriter writer(dir);  // header-only segment
  }
  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  EXPECT_EQ(reader.read_batch(batch, 10), 0u);
  EXPECT_FALSE(reader.truncated_tail());
}

TEST(JournalReaderTest, MissingDirectoryThrows) {
  EXPECT_THROW(JournalReader("/nonexistent/journal/dir"), JournalError);
  const std::string dir = make_temp_dir("nosegments");
  EXPECT_THROW(JournalReader{dir}, JournalError);  // no segments
}

// -------------------------------------------------------- corruption

TEST(JournalCorruptionTest, FlippedPayloadByteIsCrcRejected) {
  const std::string dir = make_temp_dir("flip");
  write_journal(dir, random_stream(3, 200));
  const std::string path = first_segment(dir);

  // Flip one byte somewhere in the record area (past the header).
  auto size = fs::file_size(path);
  ASSERT_GT(size, kSegmentHeaderSize + 64);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(static_cast<std::streamoff>(kSegmentHeaderSize + size / 2));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(kSegmentHeaderSize + size / 2));
  file.write(&byte, 1);
  file.close();

  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  EXPECT_THROW(
      {
        while (reader.read_batch(batch, 64) > 0) {
        }
      },
      JournalError);
}

TEST(JournalCorruptionTest, TruncatedTailRecoversAllCompleteRecords) {
  const std::string dir = make_temp_dir("trunc");
  const auto stream = random_stream(11, 300);

  // Learn each record's end offset by encoding the stream again with a
  // fresh encoder (the writer's segment encoder starts identically).
  RecordEncoder encoder;
  std::vector<std::uint8_t> wire;
  std::vector<std::size_t> record_end;  // offset within the record area
  for (const auto& obs : stream) {
    encoder.encode(obs, wire);
    record_end.push_back(wire.size());
  }

  write_journal(dir, stream);
  const std::string path = first_segment(dir);
  ASSERT_EQ(fs::file_size(path), kSegmentHeaderSize + wire.size());

  // Chop the tail at several depths, including mid-record and exactly on
  // a record boundary; recovery must deliver precisely the complete
  // prefix each time — and never crash.
  for (const std::size_t cut :
       {wire.size() - 3, record_end[250], record_end[250] - 1,
        record_end[100] + 1, record_end[0], record_end[0] - 1}) {
    fs::resize_file(path, kSegmentHeaderSize + cut);
    const auto expected = static_cast<std::size_t>(
        std::count_if(record_end.begin(), record_end.end(),
                      [cut](std::size_t end) { return end <= cut; }));
    // A cut exactly on a record boundary is indistinguishable from a
    // clean shutdown — only mid-record cuts report a torn tail.
    const bool on_boundary =
        std::find(record_end.begin(), record_end.end(), cut) != record_end.end();
    JournalReader reader(dir);
    const auto decoded = read_all(reader);
    EXPECT_EQ(reader.truncated_tail(), !on_boundary) << "cut=" << cut;
    ASSERT_EQ(decoded.size(), expected) << "cut=" << cut;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      expect_same_observation(decoded[i], stream[i], i);
    }
  }
}

TEST(JournalCorruptionTest, TruncationMidJournalIsAnError) {
  const std::string dir = make_temp_dir("midtrunc");
  JournalWriterOptions options;
  options.segment_bytes = 2048;  // several segments
  write_journal(dir, random_stream(13, 500), options);
  const std::string path = first_segment(dir);
  JournalReader probe(dir);
  ASSERT_GT(probe.segment_count(), 1u);

  fs::resize_file(path, fs::file_size(path) - 5);
  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  EXPECT_THROW(
      {
        while (reader.read_batch(batch, 64) > 0) {
        }
      },
      JournalError);
}

TEST(JournalWriterTest, FsyncPolicyParsesBothWays) {
  JournalWriterOptions options;
  EXPECT_TRUE(parse_fsync_policy("never", options));
  EXPECT_EQ(options.fsync_policy, FsyncPolicy::kNever);
  EXPECT_EQ(fsync_policy_to_string(options), "never");
  EXPECT_TRUE(parse_fsync_policy("on_rotate", options));
  EXPECT_EQ(options.fsync_policy, FsyncPolicy::kOnRotate);
  EXPECT_EQ(fsync_policy_to_string(options), "on_rotate");
  EXPECT_TRUE(parse_fsync_policy("interval:250", options));
  EXPECT_EQ(options.fsync_policy, FsyncPolicy::kInterval);
  EXPECT_EQ(options.fsync_interval_ms, 250);
  EXPECT_EQ(fsync_policy_to_string(options), "interval:250");

  EXPECT_FALSE(parse_fsync_policy("", options));
  EXPECT_FALSE(parse_fsync_policy("always", options));
  EXPECT_FALSE(parse_fsync_policy("interval:", options));
  EXPECT_FALSE(parse_fsync_policy("interval:-5", options));
  EXPECT_FALSE(parse_fsync_policy("interval:5s", options));
}

TEST(JournalWriterTest, FsyncPolicyDrivesFsyncCounts) {
  const auto stream = random_stream(77, 200);

  {  // kNever: not a single fsync, not even at close.
    const std::string dir = make_temp_dir("fsync_never");
    JournalWriter writer(dir);
    writer.append_batch(stream);
    writer.close();
    EXPECT_EQ(writer.fsyncs(), 0u);
  }
  {  // kOnRotate: one per rotation plus the close barrier.
    const std::string dir = make_temp_dir("fsync_rotate");
    JournalWriterOptions options;
    options.fsync_policy = FsyncPolicy::kOnRotate;
    options.segment_bytes = 2048;  // force several rotations
    JournalWriter writer(dir, options);
    for (const auto& obs : stream) writer.append(obs);
    writer.close();
    EXPECT_GE(writer.segments_opened(), 2u);
    // One fsync per rotation plus the close barrier — except when a
    // rotation landed exactly on the final record, in which case the
    // empty continuation segment is reclaimed unsynced at close.
    EXPECT_GE(writer.fsyncs(), writer.segments_opened() - 1);
    EXPECT_LE(writer.fsyncs(), writer.segments_opened());
  }
  {  // kInterval with a zero interval: every write(2) carries an fsync.
    const std::string dir = make_temp_dir("fsync_interval");
    JournalWriterOptions options;
    options.fsync_policy = FsyncPolicy::kInterval;
    options.fsync_interval_ms = 0;
    JournalWriter writer(dir, options);
    writer.append_batch(stream);
    writer.flush();
    const auto after_flush = writer.fsyncs();
    EXPECT_GE(after_flush, 1u);
    writer.close();
    EXPECT_GE(writer.fsyncs(), after_flush);
  }
  {  // Explicit sync(): policy-independent durability point.
    const std::string dir = make_temp_dir("fsync_explicit");
    JournalWriter writer(dir);  // kNever
    writer.append_batch(stream);
    writer.sync();
    EXPECT_EQ(writer.fsyncs(), 1u);
    EXPECT_EQ(writer.records_buffered(), 0u);
  }
}

TEST(JournalWriterTest, LagAccountingTracksBufferedRecords) {
  const std::string dir = make_temp_dir("lag");
  const auto stream = random_stream(78, 64);
  JournalWriterOptions options;
  options.buffer_bytes = 1u << 20;  // nothing drains on its own
  JournalWriter writer(dir, options);

  EXPECT_EQ(writer.records_buffered(), 0u);
  EXPECT_EQ(writer.bytes_buffered(), kSegmentHeaderSize);  // unflushed header
  writer.append_batch({stream.data(), 10});
  EXPECT_EQ(writer.records_buffered(), 10u);
  EXPECT_GT(writer.bytes_buffered(), kSegmentHeaderSize);
  writer.append_batch({stream.data() + 10, 5});
  EXPECT_EQ(writer.records_buffered(), 15u);

  writer.flush();
  EXPECT_EQ(writer.records_buffered(), 0u);
  EXPECT_EQ(writer.bytes_buffered(), 0u);

  writer.append_batch({stream.data() + 15, stream.size() - 15});
  EXPECT_EQ(writer.records_buffered(), stream.size() - 15);
  writer.close();
  EXPECT_EQ(writer.records_buffered(), 0u);

  JournalReader reader(dir);
  EXPECT_EQ(read_all(reader).size(), stream.size());
}

TEST(JournalCorruptionTest, SequenceGapIsAnError) {
  const std::string dir = make_temp_dir("gap");
  JournalWriterOptions options;
  options.segment_bytes = 2048;
  write_journal(dir, random_stream(17, 500), options);
  JournalReader probe(dir);
  ASSERT_GT(probe.segment_count(), 2u);

  // Remove a middle segment: the reader must refuse, not skip history.
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!is_segment_file_name(entry.path().filename().string())) continue;
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  fs::remove(segments[1]);

  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  EXPECT_THROW(
      {
        while (reader.read_batch(batch, 64) > 0) {
        }
      },
      JournalError);
}

TEST(JournalCorruptionTest, ForeignFormatVersionIsRefusedByName) {
  const std::string dir = make_temp_dir("version");
  write_journal(dir, random_stream(19, 50));

  // Fixture: a follow-on segment whose header carries a bumped format
  // version (with a correct header CRC, so only the version check can
  // reject it).
  SegmentHeader header;
  header.version = kFormatVersion + 1;
  header.first_seq = 50;
  std::uint8_t raw[kSegmentHeaderSize];
  header.encode(raw);
  std::ofstream out(dir + "/seg-0000000000000032.aj", std::ios::binary);
  out.write(reinterpret_cast<const char*>(raw), kSegmentHeaderSize);
  out.close();

  JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  try {
    while (reader.read_batch(batch, 64) > 0) {
    }
    FAIL() << "mixed-version segment was not refused";
  } catch (const JournalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("format version"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kFormatVersion + 1)), std::string::npos)
        << what;
  }
}

TEST(JournalCorruptionTest, HugeLengthVarintIsHandledWithoutOverflow) {
  // A corrupt length varint near UINT64_MAX must not wrap the `length +
  // crc` bounds arithmetic and march the reader off the segment: every
  // record before it is recovered and the tail reads as torn.
  const std::string dir = make_temp_dir("hugelen");
  const auto stream = random_stream(29, 5);
  write_journal(dir, stream);
  std::ofstream out(first_segment(dir), std::ios::binary | std::ios::app);
  const unsigned char huge[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                0xFF, 0xFF, 0x01, 0xAA, 0xBB, 0xCC, 0xDD};
  out.write(reinterpret_cast<const char*>(huge), sizeof(huge));
  out.close();

  JournalReader reader(dir);
  const auto decoded = read_all(reader);
  EXPECT_TRUE(reader.truncated_tail());
  ASSERT_EQ(decoded.size(), stream.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_same_observation(decoded[i], stream[i], i);
  }
}

TEST(JournalCorruptionTest, BadMagicAndBadHeaderCrcAreRejected) {
  const std::string dir = make_temp_dir("magic");
  write_journal(dir, random_stream(23, 20));
  const std::string path = first_segment(dir);

  // Corrupt the magic.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char zero = 0;
    file.write(&zero, 1);
  }
  EXPECT_THROW(
      {
        JournalReader reader(dir);
        pipeline::ObservationBatch batch;
        reader.read_batch(batch, 1);
      },
      JournalError);
}

}  // namespace
}  // namespace artemis::journal

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "json/json.hpp"

namespace artemis::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, ScientificNotation) {
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").as_number(), 0.025);
  EXPECT_DOUBLE_EQ(parse("-1.5e+1").as_number(), -15.0);
}

TEST(JsonParseTest, NestedStructures) {
  const auto v = parse(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.is_object());
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1].as_int(), 2);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const auto v = parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("a\tb")").as_string(), "a\tb");
  EXPECT_EQ(parse(R"("a\/b")").as_string(), "a/b");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_THROW(parse(""), JsonError);
  EXPECT_THROW(parse("{"), JsonError);
  EXPECT_THROW(parse("[1,]"), JsonError);
  EXPECT_THROW(parse("{\"a\":}"), JsonError);
  EXPECT_THROW(parse("tru"), JsonError);
  EXPECT_THROW(parse("1 2"), JsonError);
  EXPECT_THROW(parse("01"), JsonError);  // leading zero then trailing digit
  EXPECT_THROW(parse("\"unterminated"), JsonError);
  EXPECT_THROW(parse("\"bad\\q\""), JsonError);
  EXPECT_THROW(parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(parse("1."), JsonError);
  EXPECT_THROW(parse("1e"), JsonError);
  EXPECT_THROW(parse("[1 2]"), JsonError);
}

TEST(JsonParseTest, RejectsControlCharInString) {
  const std::string bad = std::string("\"a") + '\x01' + "b\"";
  EXPECT_THROW(parse(bad), JsonError);
}

TEST(JsonParseTest, RejectsEscapedSurrogatePairs) {
  // Raw UTF-8 beyond the BMP is legal and passes through; \u-escaped
  // surrogate pairs are the unsupported construct.
  EXPECT_EQ(parse("\"\xF0\x9F\x98\x80\"").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(parse(R"("\ud83d\ude00")"), JsonError);
}

TEST(JsonParseTest, DeepNestingGuard) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(parse(deep), JsonError);
}

TEST(JsonAccessTest, TypeMismatchThrows) {
  const auto v = parse("{\"a\":1}");
  EXPECT_THROW(v.as_array(), JsonError);
  EXPECT_THROW(v.at("a").as_string(), JsonError);
  EXPECT_THROW(v.at("missing"), JsonError);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonAccessTest, AsIntRejectsFractions) {
  EXPECT_THROW(parse("1.5").as_int(), JsonError);
  EXPECT_EQ(parse("2.0").as_int(), 2);
}

TEST(JsonAccessTest, TypedGettersWithDefaults) {
  const auto v = parse(R"({"b":true,"n":3,"s":"x"})");
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_FALSE(v.get_bool("nope", false));
  EXPECT_EQ(v.get_int("n", 9), 3);
  EXPECT_EQ(v.get_int("nope", 9), 9);
  EXPECT_EQ(v.get_string("s", "d"), "x");
  EXPECT_EQ(v.get_string("nope", "d"), "d");
  EXPECT_DOUBLE_EQ(v.get_number("n", 0.0), 3.0);
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const std::string text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  const auto v = parse(text);
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(v.dump(), text);
}

TEST(JsonDumpTest, PrettyPrintIndents) {
  const auto v = parse(R"({"a":[1]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1\n  ]\n}"), std::string::npos);
}

TEST(JsonDumpTest, EscapesSpecials) {
  const Value v(std::string("a\"b\\c\nd"));
  EXPECT_EQ(v.dump(), R"("a\"b\\c\nd")");
}

TEST(JsonDumpTest, IntegersWithoutDecimalPoint) {
  EXPECT_EQ(Value(5.0).dump(), "5");
  EXPECT_EQ(Value(-3).dump(), "-3");
  EXPECT_EQ(Value(0.5).dump(), "0.5");
}

TEST(JsonDumpTest, EmptyContainers) {
  EXPECT_EQ(Value(Array{}).dump(2), "[]");
  EXPECT_EQ(Value(Object{}).dump(2), "{}");
}

TEST(JsonDumpTest, ObjectKeysSorted) {
  Object o;
  o["z"] = Value(1);
  o["a"] = Value(2);
  EXPECT_EQ(Value(std::move(o)).dump(), R"({"a":2,"z":1})");
}

TEST(JsonEqualityTest, DeepEquality) {
  EXPECT_EQ(parse("[1,[2,3]]"), parse("[1,[2,3]]"));
  EXPECT_FALSE(parse("[1]") == parse("[2]"));
  EXPECT_FALSE(parse("1") == parse("\"1\""));
}

TEST(JsonFileTest, ParseFileRoundTrip) {
  const std::string path = testing::TempDir() + "/artemis_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"k":[1,2,3]})";
  }
  const auto v = parse_file(path);
  EXPECT_EQ(v.at("k").as_array().size(), 3u);
  std::remove(path.c_str());
}

TEST(JsonFileTest, MissingFileThrows) {
  EXPECT_THROW(parse_file("/nonexistent/path/x.json"), JsonError);
}

}  // namespace
}  // namespace artemis::json

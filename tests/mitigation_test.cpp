#include <gtest/gtest.h>

#include "artemis/mitigation.hpp"

namespace artemis::core {
namespace {

// ------------------------------------------------------- plan_mitigation

MitigationPolicy policy(int floor = 24, bool reannounce = false) {
  MitigationPolicy p;
  p.deaggregation_floor = floor;
  p.reannounce_exact = reannounce;
  return p;
}

TEST(PlanTest, ExactHijackOf23SplitsIntoTwo24s) {
  const auto plan = plan_mitigation(net::Prefix::must_parse("10.0.0.0/23"),
                                    net::Prefix::must_parse("10.0.0.0/23"), policy());
  EXPECT_TRUE(plan.deaggregation_possible);
  ASSERT_EQ(plan.announcements.size(), 2u);
  EXPECT_EQ(plan.announcements[0].to_string(), "10.0.0.0/24");
  EXPECT_EQ(plan.announcements[1].to_string(), "10.0.1.0/24");
}

TEST(PlanTest, SubPrefixHijackScopesToObserved) {
  // Attacker announced 10.0.1.0/25 inside our /23 — with floor 25 allowed
  // we would split the /25; with the real-world floor 24 we cannot beat it.
  const auto plan25 = plan_mitigation(net::Prefix::must_parse("10.0.0.0/23"),
                                      net::Prefix::must_parse("10.0.1.0/25"), policy(26));
  EXPECT_TRUE(plan25.deaggregation_possible);
  ASSERT_EQ(plan25.announcements.size(), 2u);
  EXPECT_EQ(plan25.announcements[0].to_string(), "10.0.1.0/26");
  EXPECT_EQ(plan25.announcements[1].to_string(), "10.0.1.64/26");
}

TEST(PlanTest, Slash24VictimCannotDeaggregate) {
  const auto plan = plan_mitigation(net::Prefix::must_parse("10.0.0.0/24"),
                                    net::Prefix::must_parse("10.0.0.0/24"), policy());
  EXPECT_FALSE(plan.deaggregation_possible);
  EXPECT_TRUE(plan.announcements.empty());
}

TEST(PlanTest, Slash24VictimFallsBackToReannounce) {
  const auto plan = plan_mitigation(net::Prefix::must_parse("10.0.0.0/24"),
                                    net::Prefix::must_parse("10.0.0.0/24"),
                                    policy(24, /*reannounce=*/true));
  EXPECT_FALSE(plan.deaggregation_possible);
  ASSERT_EQ(plan.announcements.size(), 1u);
  EXPECT_EQ(plan.announcements[0].to_string(), "10.0.0.0/24");
}

TEST(PlanTest, ReannounceAppendsOwnedPrefix) {
  const auto plan = plan_mitigation(net::Prefix::must_parse("10.0.0.0/23"),
                                    net::Prefix::must_parse("10.0.0.0/23"),
                                    policy(24, /*reannounce=*/true));
  ASSERT_EQ(plan.announcements.size(), 3u);
  EXPECT_EQ(plan.announcements[2].to_string(), "10.0.0.0/23");
}

TEST(PlanTest, SuperPrefixHijackScopesToOwned) {
  // Attacker announced 10.0.0.0/16 covering our /23: we split our /23.
  const auto plan = plan_mitigation(net::Prefix::must_parse("10.0.0.0/23"),
                                    net::Prefix::must_parse("10.0.0.0/16"), policy());
  EXPECT_TRUE(plan.deaggregation_possible);
  ASSERT_EQ(plan.announcements.size(), 2u);
  EXPECT_EQ(plan.announcements[0].to_string(), "10.0.0.0/24");
}

TEST(PlanTest, HostPrefixNeverSplits) {
  const auto plan = plan_mitigation(net::Prefix::must_parse("10.0.0.1/32"),
                                    net::Prefix::must_parse("10.0.0.1/32"), policy(32));
  EXPECT_FALSE(plan.deaggregation_possible);
}

// -------------------------------------------------- MitigationService

struct RecordingController : Controller {
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> withdrawn;
  void announce(const net::Prefix& p) override { announced.push_back(p); }
  void withdraw(const net::Prefix& p) override { withdrawn.push_back(p); }
};

Config victim_config(bool auto_mitigate = true) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  config.mitigation().auto_mitigate = auto_mitigate;
  config.mitigation().reannounce_exact = false;
  return config;
}

HijackAlert sample_alert(std::string_view observed = "10.0.0.0/23", bgp::Asn offender = 666) {
  HijackAlert alert;
  alert.type = HijackType::kExactOrigin;
  alert.owned_prefix = net::Prefix::must_parse("10.0.0.0/23");
  alert.observed_prefix = net::Prefix::must_parse(observed);
  alert.offender = offender;
  alert.detected_at = SimTime::at_seconds(100);
  return alert;
}

TEST(MitigationServiceTest, AlertTriggersControllerAnnouncements) {
  const auto config = victim_config();
  RecordingController controller;
  sim::Simulator sim;
  MitigationService service(config, controller, sim);

  int notified = 0;
  service.on_mitigation([&](const MitigationRecord& record) {
    ++notified;
    EXPECT_TRUE(record.plan.deaggregation_possible);
  });
  service.handle_alert(sample_alert());

  ASSERT_EQ(controller.announced.size(), 2u);
  EXPECT_EQ(controller.announced[0].to_string(), "10.0.0.0/24");
  EXPECT_EQ(controller.announced[1].to_string(), "10.0.1.0/24");
  EXPECT_EQ(notified, 1);
  ASSERT_EQ(service.records().size(), 1u);
  EXPECT_EQ(service.records()[0].triggered_at, sim.now());
}

TEST(MitigationServiceTest, DuplicateAlertsMitigatedOnce) {
  const auto config = victim_config();
  RecordingController controller;
  sim::Simulator sim;
  MitigationService service(config, controller, sim);
  service.handle_alert(sample_alert());
  service.handle_alert(sample_alert());
  EXPECT_EQ(controller.announced.size(), 2u);
  EXPECT_EQ(service.records().size(), 1u);
}

TEST(MitigationServiceTest, DistinctHijacksMitigatedSeparately) {
  const auto config = victim_config();
  RecordingController controller;
  sim::Simulator sim;
  MitigationService service(config, controller, sim);
  service.handle_alert(sample_alert("10.0.0.0/23", 666));
  service.handle_alert(sample_alert("10.0.1.0/24", 777));
  EXPECT_EQ(service.records().size(), 2u);
}

TEST(MitigationServiceTest, AutoMitigateOffIgnoresAlerts) {
  const auto config = victim_config(/*auto_mitigate=*/false);
  RecordingController controller;
  sim::Simulator sim;
  MitigationService service(config, controller, sim);
  service.handle_alert(sample_alert());
  EXPECT_TRUE(controller.announced.empty());
  EXPECT_TRUE(service.records().size() == 0);
}

TEST(MitigationServiceTest, OutsourcingActivatesWhenInfeasible) {
  auto config = victim_config();
  // /24 victim: reshape the owned prefix via a /24 alert.
  RecordingController primary;
  RecordingController helper_a;
  RecordingController helper_b;
  sim::Simulator sim;
  MitigationService service(config, primary, sim);
  service.add_helper(helper_a);
  service.add_helper(helper_b);
  EXPECT_EQ(service.helper_count(), 2u);

  // Infeasible case: sub-prefix hijack of a /24 inside the owned /23 —
  // the scope /24 cannot be split below the floor.
  HijackAlert alert = sample_alert("10.0.1.0/24", 666);
  alert.type = HijackType::kSubPrefix;
  service.handle_alert(alert);

  ASSERT_EQ(service.records().size(), 1u);
  EXPECT_FALSE(service.records()[0].plan.deaggregation_possible);
  EXPECT_EQ(service.records()[0].helpers_used, 2u);
  // Helpers co-announce the owned prefix (plan had no announcements).
  ASSERT_EQ(helper_a.announced.size(), 1u);
  EXPECT_EQ(helper_a.announced[0].to_string(), "10.0.0.0/23");
  EXPECT_EQ(helper_b.announced.size(), 1u);
}

TEST(MitigationServiceTest, OutsourcingSkippedWhenDeaggWorks) {
  auto config = victim_config();
  RecordingController primary;
  RecordingController helper;
  sim::Simulator sim;
  MitigationService service(config, primary, sim);
  service.add_helper(helper);
  service.handle_alert(sample_alert());  // exact /23 hijack: deagg works
  ASSERT_EQ(service.records().size(), 1u);
  EXPECT_TRUE(service.records()[0].plan.deaggregation_possible);
  EXPECT_EQ(service.records()[0].helpers_used, 0u);
  EXPECT_TRUE(helper.announced.empty());
}

TEST(MitigationServiceTest, OutsourceAlwaysCoAnnouncesPlan) {
  auto config = victim_config();
  config.mitigation().outsource = MitigationPolicy::Outsource::kAlways;
  RecordingController primary;
  RecordingController helper;
  sim::Simulator sim;
  MitigationService service(config, primary, sim);
  service.add_helper(helper);
  service.handle_alert(sample_alert());
  ASSERT_EQ(helper.announced.size(), 2u);  // both /24 halves
  EXPECT_EQ(service.records()[0].helpers_used, 1u);
}

TEST(MitigationServiceTest, OutsourceNeverDisablesHelpers) {
  auto config = victim_config();
  config.mitigation().outsource = MitigationPolicy::Outsource::kNever;
  RecordingController primary;
  RecordingController helper;
  sim::Simulator sim;
  MitigationService service(config, primary, sim);
  service.add_helper(helper);
  HijackAlert alert = sample_alert("10.0.1.0/24", 666);
  alert.type = HijackType::kSubPrefix;
  service.handle_alert(alert);
  EXPECT_TRUE(helper.announced.empty());
  EXPECT_EQ(service.records()[0].helpers_used, 0u);
}

// ------------------------------------------------------- SimController

TEST(SimControllerTest, AppliesAfterLatencyAndLogs) {
  topo::AsGraph graph;
  graph.add_as(1, topo::Tier::kTier1);
  graph.add_as(2, topo::Tier::kStub);
  graph.add_customer_link(1, 2);
  sim::NetworkParams params;
  params.mrai = SimDuration::zero();
  sim::Network network(graph, params, Rng(1));

  SimController controller(network, 2, SimDuration::seconds(15));
  const auto prefix = net::Prefix::must_parse("10.0.0.0/24");
  controller.announce(prefix);
  ASSERT_EQ(controller.log().size(), 1u);
  EXPECT_EQ(controller.log()[0].issued_at, SimTime::zero());
  EXPECT_EQ(controller.log()[0].applied_at, SimTime::at_seconds(15));

  network.simulator().run_until(SimTime::at_seconds(14));
  EXPECT_EQ(network.speaker(2).best_route(prefix), nullptr);
  network.run_to_convergence();
  ASSERT_NE(network.speaker(2).best_route(prefix), nullptr);
  EXPECT_EQ(network.resolve_origin(1, prefix.address()), 2u);

  controller.withdraw(prefix);
  network.run_to_convergence();
  EXPECT_EQ(network.speaker(2).best_route(prefix), nullptr);
  EXPECT_EQ(network.resolve_origin(1, prefix.address()), bgp::kNoAsn);
  ASSERT_EQ(controller.log().size(), 2u);
  EXPECT_EQ(controller.log()[1].kind, ControllerCommand::Kind::kWithdraw);
}

}  // namespace
}  // namespace artemis::core

#include <gtest/gtest.h>

#include <cmath>

#include "artemis/monitoring.hpp"

namespace artemis::core {
namespace {

Config victim_config() {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  return config;
}

feeds::Observation obs(bgp::Asn vantage, std::string_view prefix,
                       std::vector<bgp::Asn> path, double at = 10.0,
                       feeds::ObservationType type =
                           feeds::ObservationType::kAnnouncement) {
  feeds::Observation o;
  o.type = type;
  o.source = "test";
  o.vantage = vantage;
  o.prefix = net::Prefix::must_parse(prefix);
  o.attrs.as_path = bgp::AsPath(std::move(path));
  o.event_time = SimTime::at_seconds(at);
  o.delivered_at = SimTime::at_seconds(at);
  return o;
}

const net::Prefix kOwned = net::Prefix::must_parse("10.0.0.0/23");

TEST(MonitoringTest, NoDataMeansUnknown) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  EXPECT_FALSE(monitoring.vantage_legitimate(9, kOwned).has_value());
  EXPECT_TRUE(std::isnan(monitoring.fraction_legitimate(kOwned)));
  EXPECT_FALSE(monitoring.all_legitimate(kOwned));
  EXPECT_EQ(monitoring.vantages_with_data(kOwned), 0u);
}

TEST(MonitoringTest, LegitimateRouteMarksVantage) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.0/23", {9, 2, 65001}));
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), true);
  EXPECT_DOUBLE_EQ(monitoring.fraction_legitimate(kOwned), 1.0);
  EXPECT_TRUE(monitoring.all_legitimate(kOwned));
}

TEST(MonitoringTest, HijackedRouteFlipsVantage) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.0/23", {9, 2, 65001}, 10));
  monitoring.process(obs(9, "10.0.0.0/23", {9, 666}, 20));
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), false);
  ASSERT_EQ(monitoring.changes().size(), 2u);
  EXPECT_TRUE(monitoring.changes()[0].legitimate);
  EXPECT_FALSE(monitoring.changes()[1].legitimate);
  EXPECT_EQ(monitoring.changes()[1].current_origin, 666u);
  EXPECT_EQ(monitoring.changes()[1].when, SimTime::at_seconds(20));
}

TEST(MonitoringTest, SubPrefixHijackDetectedViaLpm) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.0/23", {9, 2, 65001}, 10));
  // More-specific /24 by the attacker captures half the space.
  monitoring.process(obs(9, "10.0.1.0/24", {9, 666}, 20));
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), false);
}

TEST(MonitoringTest, MitigationSlash24sRestoreLegitimacy) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.0/23", {9, 666}, 10));  // hijacked
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), false);
  monitoring.process(obs(9, "10.0.0.0/24", {9, 2, 65001}, 20));
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), false);  // half restored
  monitoring.process(obs(9, "10.0.1.0/24", {9, 2, 65001}, 21));
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), true);  // both halves
}

TEST(MonitoringTest, WithdrawalRemovesRoute) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.0/23", {9, 2, 65001}, 10));
  monitoring.process(
      obs(9, "10.0.0.0/23", {}, 20, feeds::ObservationType::kWithdrawal));
  EXPECT_EQ(monitoring.vantage_legitimate(9, kOwned), false);  // blackholed
}

TEST(MonitoringTest, FractionAcrossVantages) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(1, "10.0.0.0/23", {1, 65001}, 10));
  monitoring.process(obs(2, "10.0.0.0/23", {2, 65001}, 10));
  monitoring.process(obs(3, "10.0.0.0/23", {3, 666}, 10));
  monitoring.process(obs(4, "10.0.0.0/23", {4, 666}, 10));
  EXPECT_DOUBLE_EQ(monitoring.fraction_legitimate(kOwned), 0.5);
  EXPECT_EQ(monitoring.vantages_with_data(kOwned), 4u);
  EXPECT_FALSE(monitoring.all_legitimate(kOwned));
}

TEST(MonitoringTest, ChangeLogOnlyOnFlips) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.0/23", {9, 65001}, 10));
  monitoring.process(obs(9, "10.0.0.0/23", {9, 2, 65001}, 11));  // still legit
  monitoring.process(obs(9, "10.0.0.0/23", {9, 3, 65001}, 12));  // still legit
  EXPECT_EQ(monitoring.changes().size(), 1u);
}

TEST(MonitoringTest, OnChangeHandlerFires) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  std::vector<VantageChange> seen;
  monitoring.on_change([&](const VantageChange& change) { seen.push_back(change); });
  monitoring.process(obs(9, "10.0.0.0/23", {9, 65001}, 10));
  monitoring.process(obs(9, "10.0.0.0/23", {9, 666}, 20));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].vantage, 9u);
  EXPECT_TRUE(seen[0].legitimate);
  EXPECT_FALSE(seen[1].legitimate);
}

TEST(MonitoringTest, UnrelatedObservationsIgnored) {
  const auto config = victim_config();
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "203.0.113.0/24", {9, 7}, 10));
  EXPECT_EQ(monitoring.vantages_with_data(kOwned), 0u);
  EXPECT_TRUE(monitoring.changes().empty());
}

TEST(MonitoringTest, HostPrefixOwnedUsesSingleSample) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.1/32");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  MonitoringService monitoring(config);
  monitoring.process(obs(9, "10.0.0.1/32", {9, 65001}, 10));
  EXPECT_EQ(monitoring.vantage_legitimate(9, net::Prefix::must_parse("10.0.0.1/32")),
            true);
}

TEST(MonitoringTest, BatchMatchesPerObservationProcessing) {
  // The batch-vs-loop oracle for the memoized batch path: process_batch
  // must record exactly the change timeline process() does, including
  // intermediate flips inside one batch, repeated prefixes (the match
  // memo) and runs of one vantage (the view memo).
  const auto config = victim_config();
  std::vector<feeds::Observation> stream;
  // vantage 9: legit, flip to hijack, repeat (memo hit), flip back.
  stream.push_back(obs(9, "10.0.0.0/23", {9, 2, 65001}, 10));
  stream.push_back(obs(9, "10.0.0.0/23", {9, 666}, 11));
  stream.push_back(obs(9, "10.0.0.0/23", {9, 666}, 12));
  stream.push_back(obs(9, "10.0.0.0/23", {9, 2, 65001}, 13));
  // vantage switch mid-batch, sub-prefix via LPM, a withdrawal, noise.
  stream.push_back(obs(8, "10.0.0.0/23", {8, 65001}, 14));
  stream.push_back(obs(8, "10.0.1.0/24", {8, 666}, 15));
  stream.push_back(obs(8, "10.0.1.0/24", {}, 16, feeds::ObservationType::kWithdrawal));
  stream.push_back(obs(8, "203.0.113.0/24", {8, 7}, 17));
  stream.push_back(obs(9, "10.0.0.0/16", {9, 666}, 18));

  MonitoringService loop(config);
  for (const auto& o : stream) loop.process(o);
  MonitoringService batched(config);
  batched.process_batch(stream);

  ASSERT_EQ(batched.changes().size(), loop.changes().size());
  for (std::size_t i = 0; i < loop.changes().size(); ++i) {
    EXPECT_EQ(batched.changes()[i].when, loop.changes()[i].when) << i;
    EXPECT_EQ(batched.changes()[i].vantage, loop.changes()[i].vantage) << i;
    EXPECT_EQ(batched.changes()[i].owned, loop.changes()[i].owned) << i;
    EXPECT_EQ(batched.changes()[i].legitimate, loop.changes()[i].legitimate) << i;
    EXPECT_EQ(batched.changes()[i].current_origin, loop.changes()[i].current_origin)
        << i;
  }
  EXPECT_EQ(batched.fraction_legitimate(kOwned), loop.fraction_legitimate(kOwned));
  EXPECT_EQ(batched.vantages_with_data(kOwned), loop.vantages_with_data(kOwned));
}

}  // namespace
}  // namespace artemis::core

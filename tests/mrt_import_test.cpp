// The MRT archive importer: streaming converter + mrt -> journal import.
//
// The headline property (ISSUE 4 acceptance): importing a fixture MRT
// window into a journal and replaying it — at any shard count — yields
// bit-identical merged_alerts() to ingesting the same window directly,
// and to the legacy ElemReader-based adapter path BatchFeed uses. Plus
// the robustness contracts: a file truncated mid-record imports every
// complete record and leaves a clean journal (never a torn segment),
// AS4_PATH/AS_PATH merge restores 4-byte ASNs from pre-AS4 records, and
// IPv6 TABLE_DUMP_V2 RIB entries flow through end to end.
#include "mrt/observation_convert.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "feeds/monitor_hub.hpp"
#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "mrt/stream_reader.hpp"
#include "pipeline/sharded_detector.hpp"

#ifdef ARTEMIS_HAVE_BZIP2
#include <bzlib.h>
#endif

namespace artemis::mrt {
namespace {

namespace fs = std::filesystem;

core::Config make_config() {
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  core::OwnedPrefix second;
  second.prefix = net::Prefix::must_parse("192.0.2.0/24");
  second.legitimate_origins.insert(65002);
  config.add_owned(std::move(second));
  core::OwnedPrefix v6;
  v6.prefix = net::Prefix::must_parse("2001:db8::/32");
  v6.legitimate_origins.insert(65003);
  config.add_owned(std::move(v6));
  return config;
}

UpdateRecord make_update(bgp::Asn peer, double at_seconds,
                         const std::vector<std::string>& announced,
                         std::vector<bgp::Asn> path,
                         const std::vector<std::string>& withdrawn = {}) {
  UpdateRecord rec;
  rec.peer_asn = peer;
  rec.local_asn = 0;
  rec.peer_ip = net::IpAddress::v4(0x0A000000 | peer);
  rec.timestamp = SimTime::at_seconds(at_seconds);
  rec.update.sender = peer;
  for (const auto& p : announced) {
    rec.update.announced.push_back(net::Prefix::must_parse(p));
  }
  for (const auto& p : withdrawn) {
    rec.update.withdrawn.push_back(net::Prefix::must_parse(p));
  }
  rec.update.attrs.as_path = bgp::AsPath(std::move(path));
  return rec;
}

RibEntryRecord make_rib_entry(bgp::Asn peer, double at_seconds, const std::string& prefix,
                              std::vector<bgp::Asn> path) {
  RibEntryRecord entry;
  entry.peer_asn = peer;
  entry.timestamp = SimTime::at_seconds(at_seconds);
  entry.route.prefix = net::Prefix::must_parse(prefix);
  entry.route.attrs.as_path = bgp::AsPath(std::move(path));
  return entry;
}

void append(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

/// The fixture window: per-record MRT byte blobs (so truncation tests can
/// cut at known boundaries) covering every record flavor the importer
/// handles — 4-byte updates (announce, withdraw, mixed), a pre-AS4
/// 2-byte record needing the AS4_PATH merge, a v4 RIB snapshot, a v6
/// RIB snapshot, and the dual-stack update shapes (MP_REACH/MP_UNREACH
/// with both next-hop lengths, a v6-withdraw-only update, v6 NLRI in a
/// pre-AS4 record). Timestamps increase monotonically.
std::vector<std::vector<std::uint8_t>> fixture_records() {
  std::vector<std::vector<std::uint8_t>> records;
  // Hijack of owned /23 (offender 666) seen by peer 9.
  records.push_back(
      encode_update_record(make_update(9, 100, {"10.0.0.0/23"}, {9, 3356, 666})));
  // Legitimate announcement of the same prefix.
  records.push_back(
      encode_update_record(make_update(9, 101, {"10.0.0.0/23"}, {9, 3356, 65001})));
  // Sub-prefix hijack seen by peer 8, plus a withdrawal in one record.
  records.push_back(encode_update_record(
      make_update(8, 102, {"10.0.1.0/24"}, {8, 1299, 666}, {"203.0.113.0/24"})));
  // Pre-AS4 speaker: wide ASN 70000 squashed to AS_TRANS on the wire,
  // restored by the AS4_PATH merge; hijacks owned #2.
  records.push_back(
      encode_update_record_as2(make_update(7, 104, {"192.0.2.0/24"}, {7, 70000, 666})));
  // v4 RIB snapshot at t=105 (originated == snapshot time, so the legacy
  // ElemReader adapter and the importer agree on event times).
  records.push_back(encode_table_dump(
      {make_rib_entry(9, 105, "10.0.0.0/23", {9, 3356, 666}),
       make_rib_entry(8, 105, "198.51.100.0/24", {8, 1299, 65010})},
      SimTime::at_seconds(105)));
  // v6 RIB snapshot: hijack of the owned v6 /32 (offender 667).
  records.push_back(encode_table_dump(
      {make_rib_entry(9, 106, "2001:db8::/32", {9, 3356, 667}),
       make_rib_entry(9, 106, "2001:db8:ffff::/48", {9, 3356, 667})},
      SimTime::at_seconds(106)));
  // MP_REACH v6 sub-prefix hijack in an update stream (not a RIB dump).
  records.push_back(encode_update_record(
      make_update(9, 107, {"2001:db8:dead::/48"}, {9, 3356, 667})));
  // Dual-stack update with the 32-byte (global + link-local) next hop:
  // v4 sub-prefix hijack and v6 exact hijack in one record, plus an
  // MP_UNREACH withdrawal riding along.
  {
    UpdateEncodeOptions nh32;
    nh32.mp_next_hop_len = 32;
    records.push_back(encode_update_record(
        make_update(8, 108, {"10.0.1.0/24", "2001:db8::/32"}, {8, 1299, 667},
                    {"2001:db8:aaaa::/48"}),
        nh32));
  }
  // v6-withdraw-only update: a lone MP_UNREACH attribute, nothing else.
  records.push_back(
      encode_update_record(make_update(9, 109, {}, {}, {"2001:db8:dead::/48"})));
  // v6 NLRI announced by a pre-AS4 speaker (AS4_PATH merge + MP_REACH).
  records.push_back(encode_update_record_as2(
      make_update(7, 110, {"2001:db8:ffff::/48"}, {7, 70000, 667})));
  return records;
}

std::vector<std::uint8_t> fixture_window() {
  std::vector<std::uint8_t> window;
  for (const auto& rec : fixture_records()) append(window, rec);
  return window;
}

/// Collects everything a converter emits into one flat vector.
std::vector<feeds::Observation> convert_to_vector(
    ObservationConverter& converter, std::span<const std::uint8_t> data,
    ConvertFileStats* stats_out = nullptr) {
  std::vector<feeds::Observation> out;
  const auto stats =
      converter.convert_file(data, [&](std::span<const feeds::Observation> batch) {
        out.insert(out.end(), batch.begin(), batch.end());
      });
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

/// The legacy BatchFeed-style adapter: ElemReader elems -> Observations,
/// with the importer's source naming so outputs are comparable.
std::vector<feeds::Observation> elem_reader_adapter(std::span<const std::uint8_t> data) {
  std::vector<feeds::Observation> out;
  for (const auto& elem : read_elems(data)) {
    feeds::Observation obs;
    switch (elem.type) {
      case ElemType::kAnnounce: obs.type = feeds::ObservationType::kAnnouncement; break;
      case ElemType::kWithdraw: obs.type = feeds::ObservationType::kWithdrawal; break;
      case ElemType::kRibEntry: obs.type = feeds::ObservationType::kRouteState; break;
    }
    obs.source = "mrt:AS" + std::to_string(elem.peer_asn);
    obs.vantage = elem.peer_asn;
    obs.prefix = elem.prefix;
    obs.attrs = elem.attrs;
    obs.event_time = elem.timestamp;
    obs.delivered_at = elem.timestamp;
    out.push_back(std::move(obs));
  }
  return out;
}

void expect_same_observation(const feeds::Observation& a, const feeds::Observation& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.vantage, b.vantage);
  EXPECT_EQ(a.prefix, b.prefix);
  EXPECT_EQ(a.attrs.as_path.to_string(), b.attrs.as_path.to_string());
  EXPECT_EQ(a.attrs.origin, b.attrs.origin);
  EXPECT_EQ(a.attrs.communities.size(), b.attrs.communities.size());
  EXPECT_EQ(a.event_time, b.event_time);
  EXPECT_EQ(a.delivered_at, b.delivered_at);
}

void expect_same_alerts(const std::vector<core::HijackAlert>& a,
                        const std::vector<core::HijackAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "alert " << i;
    EXPECT_EQ(a[i].owned_prefix, b[i].owned_prefix) << "alert " << i;
    EXPECT_EQ(a[i].observed_prefix, b[i].observed_prefix) << "alert " << i;
    EXPECT_EQ(a[i].offender, b[i].offender) << "alert " << i;
    EXPECT_EQ(a[i].observed_path.to_string(), b[i].observed_path.to_string())
        << "alert " << i;
    EXPECT_EQ(a[i].vantage, b[i].vantage) << "alert " << i;
    EXPECT_EQ(a[i].source, b[i].source) << "alert " << i;
    EXPECT_EQ(a[i].event_time, b[i].event_time) << "alert " << i;
    EXPECT_EQ(a[i].detected_at, b[i].detected_at) << "alert " << i;
  }
}

std::string fresh_dir(const std::string& tag) {
  const auto dir = fs::path(::testing::TempDir()) / ("artemis_mrt_import_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

std::string write_file(const std::string& dir, const std::string& name,
                       std::span<const std::uint8_t> bytes) {
  fs::create_directories(dir);
  const auto path = fs::path(dir) / name;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path.string();
}

// ------------------------------------------------------ converter core

TEST(MrtConvertTest, ConverterMatchesElemReaderAdapter) {
  const auto window = fixture_window();
  ObservationConverter converter;
  ConvertFileStats stats;
  const auto converted = convert_to_vector(converter, window, &stats);
  EXPECT_TRUE(stats.clean());
  // 8 update records + 2 dumps of (1 peer index + 2 RIB records) each.
  EXPECT_EQ(stats.records, 14u);
  EXPECT_EQ(stats.skipped_records, 0u);
  EXPECT_EQ(stats.bytes_consumed, window.size());
  EXPECT_EQ(stats.observations, converted.size());

  const auto legacy = elem_reader_adapter(window);
  ASSERT_EQ(converted.size(), legacy.size());
  for (std::size_t i = 0; i < converted.size(); ++i) {
    SCOPED_TRACE("observation " + std::to_string(i));
    expect_same_observation(converted[i], legacy[i]);
  }
}

TEST(MrtConvertTest, As4PathMergeRestoresWideAsns) {
  const auto bytes =
      encode_update_record_as2(make_update(7, 104, {"192.0.2.0/24"}, {7, 70000, 666}));
  ObservationConverter converter;
  const auto obs = convert_to_vector(converter, bytes);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].attrs.as_path.to_string(), bgp::AsPath({7, 70000, 666}).to_string());
  // The wire really carried AS_TRANS: a decoder that ignores AS4_PATH
  // must see it in the mandatory AS_PATH.
  bool saw_as_trans = false;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == (kAsTrans >> 8) && bytes[i + 1] == (kAsTrans & 0xFF)) {
      saw_as_trans = true;
    }
  }
  EXPECT_TRUE(saw_as_trans);
}

TEST(MrtConvertTest, Ipv6RibEntriesConvert) {
  const auto bytes = encode_table_dump(
      {make_rib_entry(9, 106, "2001:db8::/32", {9, 3356, 667}),
       make_rib_entry(8, 106, "2001:db8:ffff::/48", {8, 1299, 65003})},
      SimTime::at_seconds(106));
  ObservationConverter converter;
  const auto obs = convert_to_vector(converter, bytes);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].type, feeds::ObservationType::kRouteState);
  EXPECT_EQ(obs[0].prefix, net::Prefix::must_parse("2001:db8::/32"));
  EXPECT_EQ(obs[0].vantage, 9u);
  EXPECT_EQ(obs[1].prefix, net::Prefix::must_parse("2001:db8:ffff::/48"));
  EXPECT_EQ(obs[1].vantage, 8u);
}

TEST(MrtConvertTest, MonotoneClockClampsOutOfOrderHeadersAcrossFiles) {
  // File A: t=200 then t=150 (archives interleave collector shards).
  std::vector<std::uint8_t> file_a;
  append(file_a, encode_update_record(make_update(9, 200, {"10.0.0.0/23"}, {9, 666})));
  append(file_a, encode_update_record(make_update(9, 150, {"10.0.1.0/24"}, {9, 666})));
  // File B starts before the clock: t=100.
  std::vector<std::uint8_t> file_b;
  append(file_b, encode_update_record(make_update(9, 100, {"10.0.0.0/24"}, {9, 666})));

  ObservationConverter converter;
  const auto obs_a = convert_to_vector(converter, file_a);
  const auto obs_b = convert_to_vector(converter, file_b);
  ASSERT_EQ(obs_a.size(), 2u);
  ASSERT_EQ(obs_b.size(), 1u);
  EXPECT_EQ(obs_a[0].event_time, SimTime::at_seconds(200));
  EXPECT_EQ(obs_a[1].event_time, SimTime::at_seconds(200));  // clamped
  EXPECT_EQ(obs_b[0].event_time, SimTime::at_seconds(200));  // clock persists
  EXPECT_EQ(converter.clock_us(), SimTime::at_seconds(200).as_micros());
}

TEST(MrtConvertTest, SourceSchemes) {
  const auto bytes =
      encode_update_record(make_update(9, 100, {"10.0.0.0/23"}, {9, 666}));
  {
    ObservationConverter converter;  // default: per collector peer
    const auto obs = convert_to_vector(converter, bytes);
    ASSERT_EQ(obs.size(), 1u);
    EXPECT_EQ(obs[0].source, "mrt:AS9");
    EXPECT_EQ(converter.source_table_size(), 1u);
  }
  {
    ObservationConvertOptions options;
    options.source_prefix = "routeviews";
    options.source_scheme = ImportSourceScheme::kSingle;
    ObservationConverter converter(options);
    const auto obs = convert_to_vector(converter, bytes);
    ASSERT_EQ(obs.size(), 1u);
    EXPECT_EQ(obs[0].source, "routeviews");
    EXPECT_EQ(converter.source_table_size(), 0u);
  }
}

TEST(MrtConvertTest, DeliveryLagShiftsDeliveredAtOnly) {
  ObservationConvertOptions options;
  options.delivery_lag = SimDuration::seconds(60);
  ObservationConverter converter(options);
  const auto bytes =
      encode_update_record(make_update(9, 100, {"10.0.0.0/23"}, {9, 666}));
  const auto obs = convert_to_vector(converter, bytes);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].event_time, SimTime::at_seconds(100));
  EXPECT_EQ(obs[0].delivered_at, SimTime::at_seconds(160));
}

TEST(MrtConvertTest, BatchCapacityFlushesAtRecordBoundaries) {
  std::vector<std::uint8_t> window;
  for (int i = 0; i < 10; ++i) {
    // Three observations per record (two announced + one withdrawn).
    append(window, encode_update_record(make_update(
                       9, 100 + i, {"10.0.0.0/24", "10.0.1.0/24"}, {9, 666},
                       {"203.0.113.0/24"})));
  }
  ObservationConvertOptions options;
  options.batch_capacity = 4;
  ObservationConverter converter(options);
  std::vector<std::size_t> batch_sizes;
  const auto stats = converter.convert_file(
      window, [&](std::span<const feeds::Observation> batch) {
        batch_sizes.push_back(batch.size());
      });
  EXPECT_TRUE(stats.clean());
  EXPECT_EQ(stats.observations, 30u);
  std::size_t total = 0;
  for (const auto n : batch_sizes) {
    total += n;
    EXPECT_EQ(n % 3, 0u) << "flush tore a record apart";
  }
  EXPECT_EQ(total, 30u);
}

// ----------------------------------------------------- truncation

TEST(MrtImportTest, TruncatedFileMidRecordProducesCleanPartialJournal) {
  const auto records = fixture_records();
  // Every cut position inside record 3: mid-header, mid-timestamp
  // extension, mid-body — all must yield exactly the first three
  // records' observations and a perfectly readable journal.
  std::vector<std::uint8_t> intact;
  for (int i = 0; i < 3; ++i) append(intact, records[static_cast<std::size_t>(i)]);
  const std::size_t next_len = records[3].size();
  std::uint64_t expected_obs = 0;
  {
    ObservationConverter counter;
    expected_obs = convert_to_vector(counter, intact).size();
  }

  int variant = 0;
  for (const std::size_t keep : {std::size_t{5}, std::size_t{13}, next_len - 3}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    auto bytes = intact;
    bytes.insert(bytes.end(), records[3].begin(),
                 records[3].begin() + static_cast<std::ptrdiff_t>(keep));

    const std::string dir = fresh_dir("trunc_src_" + std::to_string(variant));
    const std::string journal_dir = fresh_dir("trunc_j_" + std::to_string(variant));
    ++variant;
    const auto path = write_file(dir, "window.mrt", bytes);

    const std::string paths[] = {path};
    const auto result = import_mrt_files(paths, journal_dir);
    EXPECT_EQ(result.files, 0u);
    EXPECT_EQ(result.truncated_files, 1u);
    EXPECT_EQ(result.records, 3u);
    EXPECT_EQ(result.observations, expected_obs);
    EXPECT_EQ(result.mrt_bytes, intact.size());
    ASSERT_EQ(result.file_errors.size(), 1u);

    // The journal itself is clean: every complete record, no torn tail.
    journal::JournalReader reader(journal_dir);
    pipeline::ObservationBatch batch;
    std::uint64_t read = 0;
    while (const auto n = reader.read_batch(batch, 1024)) read += n;
    EXPECT_EQ(read, expected_obs);
    EXPECT_FALSE(reader.truncated_tail());
  }
}

TEST(MrtImportTest, MalformedRecordStopsFileAtPreviousBoundary) {
  const auto records = fixture_records();
  std::vector<std::uint8_t> bytes;
  append(bytes, records[0]);
  // A record whose BGP marker is wrong: complete on the wire (header and
  // length intact) but malformed inside.
  auto bad = records[1];
  // header(12) + ET micros(4) + BGP4MP preamble(20) = first marker byte.
  bad[12 + 4 + 20] ^= 0xFF;
  append(bytes, bad);
  append(bytes, records[2]);  // never reached

  ObservationConverter converter;
  ConvertFileStats stats;
  const auto obs = convert_to_vector(converter, bytes, &stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.error.empty());
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(obs.size(), 1u);  // only record 0's announcement
}

// ------------------------------------------------- journal round trip

TEST(MrtImportTest, ImportReplayRoundTripBitIdentical) {
  const auto records = fixture_records();
  // Two files, split mid-window: import must stitch them into one
  // contiguous monotone history.
  std::vector<std::uint8_t> file1;
  for (std::size_t i = 0; i < 3; ++i) append(file1, records[i]);
  std::vector<std::uint8_t> file2;
  for (std::size_t i = 3; i < records.size(); ++i) append(file2, records[i]);

  const std::string src_dir = fresh_dir("roundtrip_src");
  const std::string journal_dir = fresh_dir("roundtrip_j");
  const std::vector<std::string> paths = {write_file(src_dir, "a.mrt", file1),
                                          write_file(src_dir, "b.mrt", file2)};

  const auto result = import_mrt_files(paths, journal_dir);
  EXPECT_EQ(result.files, 2u);
  EXPECT_EQ(result.truncated_files, 0u);
  EXPECT_EQ(result.failed_files, 0u);
  EXPECT_GT(result.observations, 0u);
  EXPECT_GT(result.journal_bytes, 0u);

  // Path A — direct ingestion: converter output straight into the batch
  // pipeline (hub -> sharded detection), no journal.
  const core::Config config_a = make_config();
  pipeline::ShardedDetector direct(config_a);
  feeds::MonitorHub direct_hub;
  direct.attach(direct_hub);
  {
    ObservationConverter converter;
    const auto window = fixture_window();
    const auto stats = converter.convert_file(window, direct_hub.batch_inlet());
    ASSERT_TRUE(stats.clean());
    ASSERT_EQ(converter.observations_emitted(), result.observations);
  }
  const auto direct_alerts = direct.merged_alerts();
  ASSERT_FALSE(direct_alerts.empty());

  // Path B — legacy adapter ingestion (the BatchFeed shape): ElemReader
  // elems adapted per-observation into the same pipeline.
  const core::Config config_b = make_config();
  pipeline::ShardedDetector legacy(config_b);
  feeds::MonitorHub legacy_hub;
  legacy.attach(legacy_hub);
  for (const auto& obs : elem_reader_adapter(fixture_window())) {
    legacy_hub.publish(obs);
  }
  expect_same_alerts(legacy.merged_alerts(), direct_alerts);

  // Path C — journal replay at shard counts 1 and 4: bit-identical both
  // ways.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const core::Config config_c = make_config();
    pipeline::ShardedDetectorOptions options;
    options.shards = shards;
    pipeline::ShardedDetector replayed(config_c, options);
    feeds::MonitorHub hub;
    replayed.attach(hub);
    journal::JournalReader reader(journal_dir);
    journal::ReplayFeed feed(reader);
    const auto replayed_count = feed.replay_all(hub);
    EXPECT_EQ(replayed_count, result.observations);
    EXPECT_FALSE(reader.truncated_tail());
    expect_same_alerts(replayed.merged_alerts(), direct_alerts);
    EXPECT_EQ(replayed.observations_processed(), direct.observations_processed());
  }
}

TEST(MrtImportTest, V6HijackDetectedThroughImportAndReplay) {
  const std::string src_dir = fresh_dir("v6_src");
  const std::string journal_dir = fresh_dir("v6_j");
  const auto bytes = encode_table_dump(
      {make_rib_entry(9, 106, "2001:db8::/32", {9, 3356, 667})},
      SimTime::at_seconds(106));
  const std::string paths[] = {write_file(src_dir, "rib6.mrt", bytes)};
  const auto result = import_mrt_files(paths, journal_dir);
  ASSERT_EQ(result.files, 1u);

  const core::Config config = make_config();
  pipeline::ShardedDetector detector(config);
  feeds::MonitorHub hub;
  detector.attach(hub);
  journal::JournalReader reader(journal_dir);
  journal::ReplayFeed feed(reader);
  feed.replay_all(hub);
  const auto alerts = detector.merged_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].offender, 667u);
  EXPECT_EQ(alerts[0].owned_prefix, net::Prefix::must_parse("2001:db8::/32"));
  EXPECT_EQ(alerts[0].source, "mrt:AS9");
}

// ------------------------------------------- MP truncation + skip recovery

TEST(MrtImportTest, MpRecordTruncationCutsProduceCleanPartialImport) {
  // Cut the dual-stack nh-32 record (records[7]) at EVERY byte offset:
  // mid-header, mid-MP_REACH next hop, mid-NLRI, mid-MP_UNREACH — each
  // cut must yield exactly the first seven records' observations and a
  // truncated (not errored) file.
  const auto records = fixture_records();
  std::vector<std::uint8_t> intact;
  for (std::size_t i = 0; i < 7; ++i) append(intact, records[i]);
  ConvertFileStats intact_stats;
  std::uint64_t expected_obs = 0;
  {
    ObservationConverter counter;
    expected_obs = convert_to_vector(counter, intact, &intact_stats).size();
  }
  const auto& cut_record = records[7];
  for (std::size_t keep = 1; keep < cut_record.size(); ++keep) {
    auto bytes = intact;
    bytes.insert(bytes.end(), cut_record.begin(),
                 cut_record.begin() + static_cast<std::ptrdiff_t>(keep));
    ObservationConverter converter;
    ConvertFileStats stats;
    const auto obs = convert_to_vector(converter, bytes, &stats);
    ASSERT_TRUE(stats.truncated) << "keep=" << keep;
    ASSERT_TRUE(stats.error.empty()) << "keep=" << keep << ": " << stats.error;
    ASSERT_EQ(stats.records, intact_stats.records) << "keep=" << keep;
    ASSERT_EQ(obs.size(), expected_obs) << "keep=" << keep;
    ASSERT_EQ(stats.bytes_consumed, intact.size()) << "keep=" << keep;
  }
}

/// A complete, well-framed UPDATE record whose AS_PATH is an AS_SET
/// segment — the aggregate shape we recognize but do not model. Announces
/// the owned /23, so skipping (vs mis-importing) is observable.
std::vector<std::uint8_t> as_set_update_record(bgp::Asn peer, double at_seconds) {
  return encode_update_record_as_set(
      make_update(peer, at_seconds, {"10.0.0.0/23"}, {65001, 65002}));
}

TEST(MrtImportTest, AsSetRecordSkipsAndFileContinues) {
  const auto records = fixture_records();
  std::vector<std::uint8_t> bytes;
  append(bytes, records[0]);
  append(bytes, as_set_update_record(9, 101));
  append(bytes, records[1]);  // must still convert

  ObservationConverter converter;
  ConvertFileStats stats;
  const auto obs = convert_to_vector(converter, bytes, &stats);
  EXPECT_TRUE(stats.clean());  // skips do not dirty the file
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.skipped_records, 1u);
  EXPECT_EQ(stats.bytes_consumed, bytes.size());

  // Observation stream == the same window without the AS_SET record.
  std::vector<std::uint8_t> without;
  append(without, records[0]);
  append(without, records[1]);
  ObservationConverter reference;
  const auto expected = convert_to_vector(reference, without);
  ASSERT_EQ(obs.size(), expected.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    SCOPED_TRACE("observation " + std::to_string(i));
    expect_same_observation(obs[i], expected[i]);
  }
}

TEST(MrtImportTest, SkippedRecordsSurfaceInImportResult) {
  const auto records = fixture_records();
  std::vector<std::uint8_t> bytes;
  append(bytes, records[0]);
  append(bytes, as_set_update_record(9, 101));
  append(bytes, records[1]);
  const std::string src_dir = fresh_dir("skip_src");
  const std::string journal_dir = fresh_dir("skip_j");
  const std::string paths[] = {write_file(src_dir, "w.mrt", bytes)};
  const auto result = import_mrt_files(paths, journal_dir);
  EXPECT_EQ(result.files, 1u);  // still a cleanly imported file
  EXPECT_EQ(result.truncated_files, 0u);
  EXPECT_EQ(result.failed_files, 0u);
  EXPECT_EQ(result.records, 2u);
  EXPECT_EQ(result.skipped_records, 1u);
  ASSERT_EQ(result.file_errors.size(), 1u);
  EXPECT_NE(result.file_errors[0].find("skipped 1 unsupported record"),
            std::string::npos);

  journal::JournalReader reader(journal_dir);
  pipeline::ObservationBatch batch;
  std::uint64_t read = 0;
  while (const auto n = reader.read_batch(batch, 64)) read += n;
  EXPECT_EQ(read, result.observations);
  EXPECT_FALSE(reader.truncated_tail());
}

// ------------------------------------------------- compressed transport

#ifdef ARTEMIS_HAVE_ZLIB
std::vector<std::uint8_t> gzip_bytes(std::span<const std::uint8_t> in) {
  return gzip_compress(in);
}

/// Journal segment bytes, keyed by file name (for bit-identity checks).
std::vector<std::pair<std::string, std::vector<char>>> journal_bytes(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::vector<char>>> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    out.emplace_back(entry.path().filename().string(),
                     std::vector<char>((std::istreambuf_iterator<char>(in)),
                                       std::istreambuf_iterator<char>()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MrtImportTest, GzipImportBitIdenticalToRaw) {
  const auto window = fixture_window();
  const auto gz = gzip_bytes(window);
  const std::string src_dir = fresh_dir("gz_src");
  const std::string raw_j = fresh_dir("gz_raw_j");
  const std::string gz_j = fresh_dir("gz_gz_j");
  const std::string raw_paths[] = {write_file(src_dir, "w.mrt", window)};
  const std::string gz_paths[] = {write_file(src_dir, "w.mrt.gz", gz)};

  const auto raw_result = import_mrt_files(raw_paths, raw_j);
  const auto gz_result = import_mrt_files(gz_paths, gz_j);
  EXPECT_EQ(gz_result.files, 1u);
  EXPECT_EQ(gz_result.records, raw_result.records);
  EXPECT_EQ(gz_result.observations, raw_result.observations);
  EXPECT_EQ(gz_result.mrt_bytes, raw_result.mrt_bytes);  // decompressed bytes
  EXPECT_EQ(gz_result.journal_bytes, raw_result.journal_bytes);
  // The journals are bit-identical: compression is pure transport.
  EXPECT_EQ(journal_bytes(gz_j), journal_bytes(raw_j));
}

TEST(MrtImportTest, TornGzipImportsRecoveredPrefixCleanly) {
  // A big window whose gzip stream is cut mid-file: everything
  // decompressed before the tear imports, the file counts as truncated,
  // and the journal is clean.
  std::vector<std::uint8_t> window;
  for (int rep = 0; rep < 32; ++rep) append(window, fixture_window());
  std::uint64_t full_obs = 0;
  {
    ObservationConverter counter;
    full_obs = convert_to_vector(counter, window).size();
  }
  auto gz = gzip_bytes(window);
  gz.resize(gz.size() / 2);

  const std::string src_dir = fresh_dir("torn_gz_src");
  const std::string journal_dir = fresh_dir("torn_gz_j");
  const std::string paths[] = {write_file(src_dir, "w.mrt.gz", gz)};
  const auto result = import_mrt_files(paths, journal_dir);
  EXPECT_EQ(result.files, 0u);
  EXPECT_EQ(result.truncated_files, 1u);
  EXPECT_GT(result.observations, 0u);
  EXPECT_LT(result.observations, full_obs);
  ASSERT_EQ(result.file_errors.size(), 1u);
  EXPECT_NE(result.file_errors[0].find("gzip"), std::string::npos);

  journal::JournalReader reader(journal_dir);
  pipeline::ObservationBatch batch;
  std::uint64_t read = 0;
  while (const auto n = reader.read_batch(batch, 1024)) read += n;
  EXPECT_EQ(read, result.observations);
  EXPECT_FALSE(reader.truncated_tail());
}

TEST(MrtImportTest, ChunkFedTornStreamMatchesWholeFileRecovery) {
  // The equivalence stream_reader.hpp promises: a torn gzip stream fed
  // to the push-mode ChunkDecompressor one awkward chunk at a time
  // recovers EXACTLY the bytes the pull-based InputStream recovers from
  // the same torn file, and both surface the tear the same way —
  // truncated() set, error() naming gzip, no throw.
  std::vector<std::uint8_t> window;
  for (int rep = 0; rep < 32; ++rep) append(window, fixture_window());
  auto gz = gzip_bytes(window);
  gz.resize(gz.size() / 2);

  // Pull path: InputStream over the torn file.
  std::vector<std::uint8_t> pulled;
  bool pull_truncated = false;
  std::string pull_error;
  {
    const std::string src_dir = fresh_dir("torn_eq_src");
    const auto path = write_file(src_dir, "w.mrt.gz", gz);
    auto in = open_input(path);
    std::uint8_t buf[777];
    while (const std::size_t n = in->read(buf)) {
      pulled.insert(pulled.end(), buf, buf + n);
    }
    pull_truncated = in->truncated();
    pull_error = in->error();
  }
  ASSERT_TRUE(pull_truncated);
  ASSERT_GT(pulled.size(), 0u);

  // Push path: same bytes through the chunk decompressor, 13 at a time.
  auto chunked = make_chunk_decompressor(Compression::kGzip);
  std::vector<std::uint8_t> pushed;
  const auto collect = [&](std::span<const std::uint8_t> out) {
    pushed.insert(pushed.end(), out.begin(), out.end());
  };
  for (std::size_t i = 0; i < gz.size(); i += 13) {
    const std::size_t n = std::min<std::size_t>(13, gz.size() - i);
    chunked->feed({gz.data() + i, n}, collect);
  }
  chunked->finish(collect);

  EXPECT_EQ(pushed, pulled);
  EXPECT_TRUE(chunked->truncated());
  EXPECT_EQ(chunked->error().empty(), pull_error.empty());
  EXPECT_NE(chunked->error().find("gzip"), std::string::npos);

  // After the tear the decompressor is inert until reset(); then it
  // handles a fresh, intact stream (the ingest loop's reuse pattern).
  EXPECT_FALSE(chunked->feed(gz, collect));
  chunked->reset();
  EXPECT_FALSE(chunked->truncated());
  const auto intact = gzip_bytes(fixture_window());
  std::vector<std::uint8_t> round;
  chunked->feed(intact, [&](std::span<const std::uint8_t> out) {
    round.insert(round.end(), out.begin(), out.end());
  });
  chunked->finish([&](std::span<const std::uint8_t> out) {
    round.insert(round.end(), out.begin(), out.end());
  });
  EXPECT_FALSE(chunked->truncated());
  EXPECT_EQ(round, fixture_window());
}

TEST(MrtImportTest, ReadFileBytesThrowsOnTornCompressedStream) {
  // The whole-file convenience path cannot recover a prefix, so it must
  // FAIL LOUDLY on a torn stream: a tear landing on a record boundary
  // would otherwise be indistinguishable from a complete file.
  auto gz = gzip_bytes(fixture_window());
  gz.resize(gz.size() / 2);
  const std::string src_dir = fresh_dir("torn_rfb_src");
  const auto path = write_file(src_dir, "w.mrt.gz", gz);
  EXPECT_THROW(read_file_bytes(path), std::runtime_error);
  EXPECT_THROW(read_elems_from_file(path), std::runtime_error);
}

TEST(MrtImportTest, ConcatenatedGzipMembersImportAsOneStream) {
  // pigz / split-and-cat mirrors produce multi-member files; both members
  // must decompress as one MRT stream.
  const auto records = fixture_records();
  std::vector<std::uint8_t> file1;
  for (std::size_t i = 0; i < 4; ++i) append(file1, records[i]);
  std::vector<std::uint8_t> file2;
  for (std::size_t i = 4; i < records.size(); ++i) append(file2, records[i]);
  auto gz = gzip_bytes(file1);
  const auto gz2 = gzip_bytes(file2);
  gz.insert(gz.end(), gz2.begin(), gz2.end());

  const std::string src_dir = fresh_dir("concat_gz_src");
  const std::string journal_dir = fresh_dir("concat_gz_j");
  const std::string paths[] = {write_file(src_dir, "w.mrt.gz", gz)};
  const auto result = import_mrt_files(paths, journal_dir);
  EXPECT_EQ(result.files, 1u);
  EXPECT_EQ(result.records, 14u);
}

TEST(MrtImportTest, CompressedDualStackReplayBitIdentical) {
  // The tentpole headline: a gzip'd dual-stack window imports, journals
  // and replays bit-identically (shards 1 and 4) vs direct ingestion.
  const auto window = fixture_window();
  const auto gz = gzip_bytes(window);
  const std::string src_dir = fresh_dir("gzrt_src");
  const std::string journal_dir = fresh_dir("gzrt_j");
  const std::string paths[] = {write_file(src_dir, "w.mrt.gz", gz)};
  const auto result = import_mrt_files(paths, journal_dir);
  ASSERT_EQ(result.files, 1u);

  const core::Config config_a = make_config();
  pipeline::ShardedDetector direct(config_a);
  feeds::MonitorHub direct_hub;
  direct.attach(direct_hub);
  {
    ObservationConverter converter;
    const auto stats = converter.convert_file(window, direct_hub.batch_inlet());
    ASSERT_TRUE(stats.clean());
  }
  const auto direct_alerts = direct.merged_alerts();
  ASSERT_FALSE(direct_alerts.empty());
  // The window must exercise v6 detection, not just carry v6 bytes.
  bool saw_v6_alert = false;
  for (const auto& alert : direct_alerts) {
    if (!alert.observed_prefix.is_v4()) saw_v6_alert = true;
  }
  EXPECT_TRUE(saw_v6_alert);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const core::Config config = make_config();
    pipeline::ShardedDetectorOptions options;
    options.shards = shards;
    pipeline::ShardedDetector replayed(config, options);
    feeds::MonitorHub hub;
    replayed.attach(hub);
    journal::JournalReader reader(journal_dir);
    journal::ReplayFeed feed(reader);
    const auto replayed_count = feed.replay_all(hub);
    EXPECT_EQ(replayed_count, result.observations);
    expect_same_alerts(replayed.merged_alerts(), direct_alerts);
  }
}
#endif  // ARTEMIS_HAVE_ZLIB

#ifdef ARTEMIS_HAVE_BZIP2
TEST(MrtImportTest, Bzip2ImportMatchesRaw) {
  const auto window = fixture_window();
  std::vector<std::uint8_t> bz(window.size() + window.size() / 100 + 600);
  unsigned bz_len = static_cast<unsigned>(bz.size());
  ASSERT_EQ(BZ2_bzBuffToBuffCompress(
                reinterpret_cast<char*>(bz.data()), &bz_len,
                reinterpret_cast<char*>(const_cast<std::uint8_t*>(window.data())),
                static_cast<unsigned>(window.size()), 9, 0, 0),
            BZ_OK);
  bz.resize(bz_len);

  const std::string src_dir = fresh_dir("bz_src");
  const std::string journal_dir = fresh_dir("bz_j");
  const std::string paths[] = {write_file(src_dir, "w.mrt.bz2", bz)};
  const auto result = import_mrt_files(paths, journal_dir);
  EXPECT_EQ(result.files, 1u);
  EXPECT_EQ(result.records, 14u);

  ObservationConverter counter;
  EXPECT_EQ(result.observations, convert_to_vector(counter, window).size());
}
#endif  // ARTEMIS_HAVE_BZIP2

TEST(MrtImportTest, ResumedImportAppendsContiguously) {
  // Importing a second window into an existing journal must resume the
  // sequence (JournalWriter semantics), so one reader pass sees both.
  const std::string src_dir = fresh_dir("resume_src");
  const std::string journal_dir = fresh_dir("resume_j");
  const auto records = fixture_records();
  const std::string path1 = write_file(src_dir, "w1.mrt", records[0]);
  const std::string path2 = write_file(src_dir, "w2.mrt", records[1]);

  const std::string first[] = {path1};
  const std::string second[] = {path2};
  const auto r1 = import_mrt_files(first, journal_dir);
  const auto r2 = import_mrt_files(second, journal_dir);

  journal::JournalReader reader(journal_dir);
  pipeline::ObservationBatch batch;
  std::uint64_t read = 0;
  while (const auto n = reader.read_batch(batch, 16)) read += n;
  EXPECT_EQ(read, r1.observations + r2.observations);
  EXPECT_FALSE(reader.truncated_tail());
}

}  // namespace
}  // namespace artemis::mrt

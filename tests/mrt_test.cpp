#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mrt/bytes.hpp"
#include "mrt/mrt.hpp"
#include "mrt/stream_reader.hpp"

namespace artemis::mrt {
namespace {

// ------------------------------------------------------------------ bytes

TEST(BytesTest, WriterBigEndian) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0FULL);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 15u);
  EXPECT_EQ(d[0], 0x01);
  EXPECT_EQ(d[1], 0x02);
  EXPECT_EQ(d[2], 0x03);
  EXPECT_EQ(d[3], 0x04);
  EXPECT_EQ(d[6], 0x07);
  EXPECT_EQ(d[7], 0x08);
  EXPECT_EQ(d[14], 0x0F);
}

TEST(BytesTest, ReaderRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, ReaderThrowsOnTruncation) {
  ByteWriter w;
  w.u16(1);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u16(), DecodeError);
}

TEST(BytesTest, PatchSlots) {
  ByteWriter w;
  const auto s16 = w.reserve_u16();
  const auto s32 = w.reserve_u32();
  w.u8(0xAA);
  w.patch_u16(s16, 0x1234);
  w.patch_u32(s32, 0x56789ABC);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0x56789ABCu);
  EXPECT_EQ(r.u8(), 0xAA);
}

TEST(BytesTest, SubReaderConsumes) {
  ByteWriter w;
  w.u32(0x01020304);
  w.u8(0xFF);
  ByteReader r(w.data());
  ByteReader sub = r.sub(4);
  EXPECT_EQ(sub.u32(), 0x01020304u);
  EXPECT_TRUE(sub.done());
  EXPECT_EQ(r.u8(), 0xFF);
}

// ------------------------------------------------------------- BGP UPDATE

bgp::UpdateMessage sample_update() {
  bgp::UpdateMessage u;
  u.sender = 65010;
  u.attrs.as_path = bgp::AsPath({65010, 65020, 65030});
  u.attrs.origin = bgp::Origin::kEgp;
  u.attrs.local_pref = 250;
  u.attrs.med = 17;
  u.attrs.communities = {{65010, 100}, {65010, 200}};
  u.announced = {net::Prefix::must_parse("10.0.0.0/23"),
                 net::Prefix::must_parse("10.0.2.0/24")};
  u.withdrawn = {net::Prefix::must_parse("192.0.2.0/24")};
  return u;
}

TEST(BgpUpdateCodecTest, RoundTripFull) {
  const auto original = sample_update();
  const auto bytes = encode_bgp_update(original);
  ByteReader r(bytes);
  const auto decoded = decode_bgp_update(r, original.sender);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded.sender, original.sender);
  EXPECT_EQ(decoded.announced, original.announced);
  EXPECT_EQ(decoded.withdrawn, original.withdrawn);
  EXPECT_EQ(decoded.attrs.as_path, original.attrs.as_path);
  EXPECT_EQ(decoded.attrs.origin, original.attrs.origin);
  EXPECT_EQ(decoded.attrs.local_pref, original.attrs.local_pref);
  EXPECT_EQ(decoded.attrs.med, original.attrs.med);
  EXPECT_EQ(decoded.attrs.communities, original.attrs.communities);
}

TEST(BgpUpdateCodecTest, PureWithdrawalHasNoAttributes) {
  bgp::UpdateMessage u;
  u.sender = 1;
  u.withdrawn = {net::Prefix::must_parse("10.0.0.0/8")};
  const auto bytes = encode_bgp_update(u);
  ByteReader r(bytes);
  const auto decoded = decode_bgp_update(r, 1);
  EXPECT_TRUE(decoded.announced.empty());
  ASSERT_EQ(decoded.withdrawn.size(), 1u);
  EXPECT_EQ(decoded.withdrawn[0].to_string(), "10.0.0.0/8");
}

TEST(BgpUpdateCodecTest, ZeroLengthPrefixEncodes) {
  bgp::UpdateMessage u;
  u.sender = 1;
  u.attrs.as_path = bgp::AsPath({1});
  u.announced = {net::Prefix::must_parse("0.0.0.0/0")};
  const auto bytes = encode_bgp_update(u);
  ByteReader r(bytes);
  const auto decoded = decode_bgp_update(r, 1);
  ASSERT_EQ(decoded.announced.size(), 1u);
  EXPECT_EQ(decoded.announced[0].length(), 0);
}

TEST(BgpUpdateCodecTest, OddPrefixLengthsPackTightly) {
  // /23 must consume 3 NLRI bytes, /9 two, /32 four + 1 length byte each.
  for (const auto text : {"10.0.0.0/23", "10.128.0.0/9", "1.2.3.4/32", "128.0.0.0/1"}) {
    bgp::UpdateMessage u;
    u.sender = 1;
    u.attrs.as_path = bgp::AsPath({1});
    u.announced = {net::Prefix::must_parse(text)};
    const auto bytes = encode_bgp_update(u);
    ByteReader r(bytes);
    const auto decoded = decode_bgp_update(r, 1);
    ASSERT_EQ(decoded.announced.size(), 1u) << text;
    EXPECT_EQ(decoded.announced[0].to_string(), text);
  }
}

TEST(BgpUpdateCodecTest, BadMarkerRejected) {
  auto bytes = encode_bgp_update(sample_update());
  bytes[0] = 0x00;
  ByteReader r(bytes);
  EXPECT_THROW(decode_bgp_update(r, 1), DecodeError);
}

TEST(BgpUpdateCodecTest, TruncationRejected) {
  const auto bytes = encode_bgp_update(sample_update());
  for (const std::size_t cut : {std::size_t{18}, std::size_t{20}, bytes.size() - 1}) {
    ByteReader r(std::span(bytes.data(), cut));
    EXPECT_THROW(decode_bgp_update(r, 1), DecodeError) << "cut=" << cut;
  }
}

// --------------------------------------------------------------- BGP4MP

TEST(UpdateRecordTest, RoundTripWithMicrosecondTimestamp) {
  UpdateRecord rec;
  rec.peer_asn = 64501;
  rec.local_asn = 12654;
  rec.peer_ip = net::IpAddress::parse("203.0.113.7").value();
  rec.timestamp = SimTime::at_micros(1234567890123456LL);
  rec.update = sample_update();
  rec.update.sender = rec.peer_asn;

  const auto bytes = encode_update_record(rec);
  ByteReader r(bytes);
  const auto raw = read_raw_record(r);
  ASSERT_TRUE(raw);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(raw->type, static_cast<std::uint16_t>(RecordType::kBgp4mpEt));
  const auto decoded = decode_update_record(*raw);
  EXPECT_EQ(decoded.peer_asn, rec.peer_asn);
  EXPECT_EQ(decoded.local_asn, rec.local_asn);
  EXPECT_EQ(decoded.peer_ip, rec.peer_ip);
  EXPECT_EQ(decoded.timestamp, rec.timestamp);  // microsecond precision
  EXPECT_EQ(decoded.update.announced, rec.update.announced);
}

TEST(UpdateRecordTest, WrongSubtypeRejected) {
  UpdateRecord rec;
  rec.peer_asn = 1;
  rec.update = sample_update();
  const auto bytes = encode_update_record(rec);
  ByteReader r(bytes);
  auto raw = read_raw_record(r);
  ASSERT_TRUE(raw);
  raw->subtype = 99;
  EXPECT_THROW(decode_update_record(*raw), DecodeError);
  raw->subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4);
  raw->type = static_cast<std::uint16_t>(RecordType::kTableDumpV2);
  EXPECT_THROW(decode_update_record(*raw), DecodeError);
}

TEST(RawRecordTest, EmptyStreamYieldsNullopt) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_FALSE(read_raw_record(r));
}

TEST(RawRecordTest, TruncatedHeaderThrows) {
  const std::uint8_t junk[5] = {1, 2, 3, 4, 5};
  ByteReader r(junk);
  EXPECT_THROW(read_raw_record(r), DecodeError);
}

// ------------------------------------------------------------ ElemReader

TEST(ElemReaderTest, UpdatesFanOutToElems) {
  ByteWriter stream;
  UpdateRecord rec;
  rec.peer_asn = 64501;
  rec.timestamp = SimTime::at_seconds(100);
  rec.update = sample_update();
  stream.bytes(encode_update_record(rec));

  const auto elems = read_elems(stream.data());
  ASSERT_EQ(elems.size(), 3u);  // 2 announces + 1 withdraw
  EXPECT_EQ(elems[0].type, ElemType::kAnnounce);
  EXPECT_EQ(elems[1].type, ElemType::kAnnounce);
  EXPECT_EQ(elems[2].type, ElemType::kWithdraw);
  EXPECT_EQ(elems[0].peer_asn, 64501u);
  EXPECT_EQ(elems[0].origin_as(), 65030u);
  EXPECT_EQ(elems[0].timestamp, SimTime::at_seconds(100));
  EXPECT_EQ(elems[2].prefix.to_string(), "192.0.2.0/24");
}

TEST(ElemReaderTest, TableDumpFansOutRibEntries) {
  std::vector<RibEntryRecord> entries;
  for (int i = 0; i < 3; ++i) {
    RibEntryRecord entry;
    entry.peer_asn = 100 + static_cast<bgp::Asn>(i % 2);  // two distinct peers
    entry.timestamp = SimTime::at_seconds(50);
    entry.route.prefix = net::Prefix::must_parse("10.0." + std::to_string(i) + ".0/24");
    entry.route.attrs.as_path = bgp::AsPath({100, 200});
    entries.push_back(entry);
  }
  const auto bytes = encode_table_dump(entries, SimTime::at_seconds(7200));
  const auto elems = read_elems(bytes);
  ASSERT_EQ(elems.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(elems[i].type, ElemType::kRibEntry);
    EXPECT_EQ(elems[i].peer_asn, 100 + static_cast<bgp::Asn>(i % 2));
    EXPECT_EQ(elems[i].attrs.as_path.to_string(), "100 200");
    EXPECT_EQ(elems[i].timestamp, SimTime::at_seconds(50));
  }
}

TEST(ElemReaderTest, MixedStream) {
  ByteWriter stream;
  RibEntryRecord entry;
  entry.peer_asn = 7;
  entry.route.prefix = net::Prefix::must_parse("10.0.0.0/16");
  entry.route.attrs.as_path = bgp::AsPath({7, 8});
  stream.bytes(encode_table_dump({entry}, SimTime::zero()));
  UpdateRecord rec;
  rec.peer_asn = 9;
  rec.update = sample_update();
  stream.bytes(encode_update_record(rec));

  const auto elems = read_elems(stream.data());
  ASSERT_EQ(elems.size(), 4u);
  EXPECT_EQ(elems[0].type, ElemType::kRibEntry);
  EXPECT_EQ(elems[1].type, ElemType::kAnnounce);
}

TEST(ElemReaderTest, UnknownRecordTypesSkipped) {
  ByteWriter stream;
  const std::uint8_t body[4] = {1, 2, 3, 4};
  write_raw_record(stream, static_cast<RecordType>(99), 0, SimTime::zero(), body);
  UpdateRecord rec;
  rec.peer_asn = 9;
  rec.update = sample_update();
  stream.bytes(encode_update_record(rec));
  const auto elems = read_elems(stream.data());
  EXPECT_EQ(elems.size(), 3u);  // junk record ignored, update decoded
}

TEST(ElemReaderTest, RibEntryWithUnknownPeerThrows) {
  // A RIB record without a preceding PEER_INDEX_TABLE must fail loudly.
  std::vector<RibEntryRecord> entries;
  RibEntryRecord entry;
  entry.peer_asn = 7;
  entry.route.prefix = net::Prefix::must_parse("10.0.0.0/16");
  entry.route.attrs.as_path = bgp::AsPath({7});
  entries.push_back(entry);
  auto bytes = encode_table_dump(entries, SimTime::zero());
  // Strip the first record (the peer index). Parse its header to find the
  // boundary: 12-byte header + body length at offset 8.
  ByteReader r(bytes);
  r.u32();
  r.u16();
  r.u16();
  const std::uint32_t len = r.u32();
  const std::size_t cut = 12 + len;
  std::vector<std::uint8_t> without_index(bytes.begin() + static_cast<long>(cut),
                                          bytes.end());
  EXPECT_THROW(read_elems(without_index), DecodeError);
}

TEST(ElemReaderTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/artemis_mrt_test.mrt";
  ByteWriter stream;
  UpdateRecord rec;
  rec.peer_asn = 3;
  rec.update = sample_update();
  stream.bytes(encode_update_record(rec));
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(stream.data().data()),
              static_cast<std::streamsize>(stream.data().size()));
  }
  const auto elems = read_elems_from_file(path);
  EXPECT_EQ(elems.size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(read_elems_from_file(path), std::runtime_error);
}

// ------------------------------------------- pre-AS4 records & AS4_PATH

TEST(UpdateRecordTest, As2RoundTripMergesAs4Path) {
  UpdateRecord rec;
  rec.peer_asn = 64501;
  rec.local_asn = 0;
  rec.peer_ip = net::IpAddress::v4(0x0A000001);
  rec.timestamp = SimTime::at_seconds(100);
  rec.update.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  // A wide ASN forces AS_TRANS + AS4_PATH on the 2-byte wire.
  rec.update.attrs.as_path = bgp::AsPath({64501, 200000, 65030});

  const auto bytes = encode_update_record_as2(rec);
  ByteReader r(bytes);
  const auto raw = read_raw_record(r);
  ASSERT_TRUE(raw);
  EXPECT_EQ(raw->subtype, static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage));
  const auto decoded = decode_update_record(*raw);
  EXPECT_EQ(decoded.peer_asn, 64501u);
  EXPECT_EQ(decoded.update.attrs.as_path.to_string(), "64501 200000 65030");
}

TEST(UpdateRecordTest, As2WithoutWideAsnsHasNoAs4Path) {
  UpdateRecord rec;
  rec.peer_asn = 64501;
  rec.timestamp = SimTime::at_seconds(100);
  rec.update.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  rec.update.attrs.as_path = bgp::AsPath({64501, 65030});
  const auto with_narrow = encode_update_record_as2(rec);
  rec.update.attrs.as_path = bgp::AsPath({64501, 200000});
  const auto with_wide = encode_update_record_as2(rec);
  // The AS4_PATH attribute only appears when a hop was squashed.
  EXPECT_LT(with_narrow.size(), with_wide.size());
  ByteReader r(with_narrow);
  const auto decoded = decode_update_record(*read_raw_record(r));
  EXPECT_EQ(decoded.update.attrs.as_path.to_string(), "64501 65030");
}

/// Builds a raw attribute block with independent AS_PATH (2-byte) and
/// AS4_PATH hop lists — the shapes encode_update_record_as2 can't emit.
std::vector<std::uint8_t> as2_attr_block(const std::vector<bgp::Asn>& as_path,
                                         const std::vector<bgp::Asn>& as4_path) {
  ByteWriter w;
  w.u8(0x40);  // transitive
  w.u8(2);     // AS_PATH
  w.u8(static_cast<std::uint8_t>(2 + 2 * as_path.size()));
  w.u8(2);  // AS_SEQUENCE
  w.u8(static_cast<std::uint8_t>(as_path.size()));
  for (const auto asn : as_path) w.u16(static_cast<std::uint16_t>(asn));
  if (!as4_path.empty()) {
    w.u8(0xC0);  // optional transitive
    w.u8(17);    // AS4_PATH
    w.u8(static_cast<std::uint8_t>(2 + 4 * as4_path.size()));
    w.u8(2);  // AS_SEQUENCE
    w.u8(static_cast<std::uint8_t>(as4_path.size()));
    for (const auto asn : as4_path) w.u32(asn);
  }
  return w.take();
}

TEST(PathAttributesTest, As4MergeKeepsExcessLeadingAsPathHops) {
  // RFC 6793 §4.2.3: an old speaker prepended itself AFTER the AS4_PATH
  // was attached, so AS_PATH is longer; the leading hop survives and the
  // tail comes from AS4_PATH.
  const auto block = as2_attr_block({64496, kAsTrans, 65030}, {200000, 65030});
  ByteReader r(block);
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops;
  std::vector<bgp::Asn> as4;
  decode_path_attributes_into(r, attrs, /*two_byte_as_path=*/true, hops, as4);
  EXPECT_EQ(attrs.as_path.to_string(), "64496 200000 65030");
}

TEST(PathAttributesTest, As4PathIgnoredForFourByteSpeakers) {
  // A MESSAGE_AS4 record can still carry a propagated (stale) AS4_PATH;
  // RFC 6793 §4.2.3: a 4-byte AS_PATH is authoritative and the AS4_PATH
  // must not overwrite it.
  ByteWriter w;
  w.u8(0x40);  // transitive AS_PATH, 4-byte hops
  w.u8(2);
  w.u8(2 + 4 * 2);
  w.u8(2);  // AS_SEQUENCE
  w.u8(2);
  w.u32(64496);
  w.u32(65030);
  w.u8(0xC0);  // stale AS4_PATH with different hops
  w.u8(17);
  w.u8(2 + 4 * 2);
  w.u8(2);
  w.u8(2);
  w.u32(1);
  w.u32(2);
  ByteReader r(w.data());
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops;
  std::vector<bgp::Asn> as4;
  decode_path_attributes_into(r, attrs, /*two_byte_as_path=*/false, hops, as4);
  EXPECT_EQ(attrs.as_path.to_string(), "64496 65030");
}

TEST(PathAttributesTest, OverlongAs4PathIsIgnored) {
  // An AS4_PATH longer than the AS_PATH is bogus; RFC 6793 says fall
  // back to the plain AS_PATH.
  const auto block = as2_attr_block({64496, 65030}, {1, 2, 3});
  ByteReader r(block);
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops;
  std::vector<bgp::Asn> as4;
  decode_path_attributes_into(r, attrs, /*two_byte_as_path=*/true, hops, as4);
  EXPECT_EQ(attrs.as_path.to_string(), "64496 65030");
}

TEST(ElemReaderTest, As2UpdatesFanOutWithMergedPaths) {
  ByteWriter stream;
  UpdateRecord rec;
  rec.peer_asn = 64501;
  rec.timestamp = SimTime::at_seconds(100);
  rec.update.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  rec.update.attrs.as_path = bgp::AsPath({64501, 200000});
  stream.bytes(encode_update_record_as2(rec));
  const auto elems = read_elems(stream.data());
  ASSERT_EQ(elems.size(), 1u);
  EXPECT_EQ(elems[0].peer_asn, 64501u);
  EXPECT_EQ(elems[0].origin_as(), 200000u);
}

// ------------------------------------------------------- IPv6 RIB dumps

TEST(ElemReaderTest, Ipv6RibEntriesRoundTrip) {
  std::vector<RibEntryRecord> entries;
  RibEntryRecord v6;
  v6.peer_asn = 100;
  v6.timestamp = SimTime::at_seconds(50);
  v6.route.prefix = net::Prefix::must_parse("2001:db8::/32");
  v6.route.attrs.as_path = bgp::AsPath({100, 200});
  entries.push_back(v6);
  RibEntryRecord v4;
  v4.peer_asn = 100;
  v4.timestamp = SimTime::at_seconds(50);
  v4.route.prefix = net::Prefix::must_parse("10.0.0.0/16");
  v4.route.attrs.as_path = bgp::AsPath({100, 300});
  entries.push_back(v4);

  const auto bytes = encode_table_dump(entries, SimTime::at_seconds(7200));
  const auto elems = read_elems(bytes);
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_EQ(elems[0].prefix, net::Prefix::must_parse("2001:db8::/32"));
  EXPECT_EQ(elems[0].origin_as(), 200u);
  EXPECT_EQ(elems[1].prefix, net::Prefix::must_parse("10.0.0.0/16"));
  EXPECT_EQ(elems[1].origin_as(), 300u);
}

// ------------------------------------------------- MP_REACH / MP_UNREACH

bgp::UpdateMessage dual_stack_update() {
  bgp::UpdateMessage u;
  u.sender = 65010;
  u.attrs.as_path = bgp::AsPath({65010, 3356, 65001});
  u.announced = {net::Prefix::must_parse("10.0.0.0/23"),
                 net::Prefix::must_parse("2001:db8::/32"),
                 net::Prefix::must_parse("2001:db8:ffff::/48")};
  u.withdrawn = {net::Prefix::must_parse("192.0.2.0/24"),
                 net::Prefix::must_parse("2001:db8:dead::/48")};
  return u;
}

TEST(MpNlriCodecTest, DualStackRoundTripV4First) {
  const auto original = dual_stack_update();
  const auto bytes = encode_bgp_update(original);
  ByteReader r(bytes);
  const auto decoded = decode_bgp_update(r, original.sender);
  EXPECT_TRUE(r.done());
  // Decode order: classic v4 fields first, MP NLRI appended after. The
  // fixture already lists v4 first, so the round trip is exact.
  EXPECT_EQ(decoded.announced, original.announced);
  EXPECT_EQ(decoded.withdrawn, original.withdrawn);
  EXPECT_EQ(decoded.attrs.as_path, original.attrs.as_path);
}

TEST(MpNlriCodecTest, NextHop32RoundTrips) {
  // 32-byte next hop: global + link-local, the shape most RIS peers emit.
  UpdateEncodeOptions options;
  options.mp_next_hop_len = 32;
  const auto original = dual_stack_update();
  const auto bytes16 = encode_bgp_update(original);
  const auto bytes32 = encode_bgp_update(original, options);
  EXPECT_EQ(bytes32.size(), bytes16.size() + 16);  // exactly the extra next hop
  ByteReader r(bytes32);
  const auto decoded = decode_bgp_update(r, original.sender);
  EXPECT_EQ(decoded.announced, original.announced);
  EXPECT_EQ(decoded.withdrawn, original.withdrawn);
}

TEST(MpNlriCodecTest, V6WithdrawOnlyUpdateCarriesLoneMpUnreach) {
  bgp::UpdateMessage u;
  u.sender = 1;
  u.withdrawn = {net::Prefix::must_parse("2001:db8::/32"),
                 net::Prefix::must_parse("2001:db8:1::/48")};
  const auto bytes = encode_bgp_update(u);
  ByteReader r(bytes);
  const auto decoded = decode_bgp_update(r, 1);
  EXPECT_TRUE(decoded.announced.empty());
  EXPECT_EQ(decoded.withdrawn, u.withdrawn);
  // The attribute section holds exactly one attribute: MP_UNREACH_NLRI
  // (flags, type 15). Classic withdrawn-routes length must be zero.
  ByteReader probe(bytes);
  probe.bytes(16);       // marker
  probe.u16();           // length
  probe.u8();            // type
  EXPECT_EQ(probe.u16(), 0u);  // no classic withdrawn routes
  const std::uint16_t attrs_len = probe.u16();
  ByteReader attrs = probe.sub(attrs_len);
  attrs.u8();  // flags
  EXPECT_EQ(attrs.u8(), 15u);  // MP_UNREACH_NLRI
}

TEST(MpNlriCodecTest, As2RecordWithV6NlriMergesAs4Path) {
  UpdateRecord rec;
  rec.peer_asn = 70000;  // wide: AS_TRANS on the 2-byte wire
  rec.local_asn = 64512;
  rec.peer_ip = net::IpAddress::v4(0x0A000001);
  rec.timestamp = SimTime::at_seconds(100);
  rec.update.sender = rec.peer_asn;
  rec.update.attrs.as_path = bgp::AsPath({70000, 3356, 65001});
  rec.update.announced = {net::Prefix::must_parse("2001:db8::/32")};
  const auto bytes = encode_update_record_as2(rec);
  ByteReader r(bytes);
  const auto raw = read_raw_record(r);
  ASSERT_TRUE(raw.has_value());
  const auto decoded = decode_update_record(*raw);
  EXPECT_EQ(decoded.peer_asn, kAsTrans);  // header ASN is 2-byte on the wire
  ASSERT_EQ(decoded.update.announced.size(), 1u);
  EXPECT_EQ(decoded.update.announced[0], net::Prefix::must_parse("2001:db8::/32"));
  EXPECT_EQ(decoded.update.attrs.as_path, rec.update.attrs.as_path);  // AS4 merge
}

TEST(MpNlriCodecTest, V6PeerAddressRoundTrips) {
  UpdateRecord rec;
  rec.peer_asn = 9;
  rec.local_asn = 64512;
  rec.peer_ip = *net::IpAddress::parse("2001:db8::9");
  rec.timestamp = SimTime::at_seconds(100);
  rec.update.sender = 9;
  rec.update.attrs.as_path = bgp::AsPath({9, 65001});
  rec.update.announced = {net::Prefix::must_parse("2001:db8:aaaa::/48")};
  const auto bytes = encode_update_record(rec);
  ByteReader r(bytes);
  const auto raw = read_raw_record(r);
  ASSERT_TRUE(raw.has_value());
  const auto decoded = decode_update_record(*raw);
  EXPECT_EQ(decoded.peer_ip, rec.peer_ip);
  ASSERT_EQ(decoded.update.announced.size(), 1u);
  EXPECT_EQ(decoded.update.announced[0], rec.update.announced[0]);
}

TEST(MpNlriCodecTest, V4NlriOverV6NextHopDecodes) {
  // RFC 8950: IPv4 unicast NLRI carried in MP_REACH with a 16-byte IPv6
  // next hop (v6-transport sessions). The next hop is unmodeled; the
  // NLRI must decode as ordinary v4 — not kill the record.
  ByteWriter w;
  w.u8(0x80);  // optional
  w.u8(14);    // MP_REACH_NLRI
  w.u8(4 + 16 + 1 + 4);  // afi+safi+nhlen byte, 16B next hop, reserved, /24 NLRI
  w.u16(1);    // AFI: IPv4
  w.u8(1);     // SAFI: unicast
  w.u8(16);    // next-hop length: IPv6
  for (int i = 0; i < 16; ++i) w.u8(0x20);
  w.u8(0);     // reserved
  w.u8(24);    // NLRI: 198.51.100.0/24
  w.u8(198);
  w.u8(51);
  w.u8(100);
  ByteReader r(w.data());
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops, as4;
  MpNlriScratch mp;
  decode_path_attributes_into(r, attrs, false, hops, as4, &mp);
  ASSERT_EQ(mp.announced.size(), 1u);
  EXPECT_EQ(mp.announced[0], net::Prefix::must_parse("198.51.100.0/24"));
}

TEST(MpNlriCodecTest, UnknownMpAfiThrowsUnsupportedRecord) {
  // Hand-built attribute section: a lone MP_REACH_NLRI with AFI 25
  // (L2VPN) — recognized shape, unmodeled family.
  ByteWriter w;
  w.u8(0x80);  // optional
  w.u8(14);    // MP_REACH_NLRI
  w.u8(5);     // length
  w.u16(25);   // AFI: L2VPN
  w.u8(1);     // SAFI
  w.u8(0);     // next-hop length
  w.u8(0);     // reserved
  ByteReader r(w.data());
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops, as4;
  MpNlriScratch mp;
  EXPECT_THROW(
      decode_path_attributes_into(r, attrs, false, hops, as4, &mp),
      UnsupportedRecord);
}

TEST(MpNlriCodecTest, MpAttributesSkippedWithoutScratch) {
  // RIB-entry context (mp == nullptr): MP attributes are skipped whole —
  // including the abbreviated RFC 6396 form that has no AFI/SAFI at all.
  ByteWriter w;
  w.u8(0x80);
  w.u8(14);
  w.u8(17);  // length: 1 next-hop-len byte + 16 next-hop bytes
  w.u8(16);
  for (int i = 0; i < 16; ++i) w.u8(0xAB);
  ByteReader r(w.data());
  const auto attrs = decode_path_attributes(r);
  EXPECT_TRUE(r.done());
  EXPECT_TRUE(attrs.as_path.empty());
}

// ------------------------------------------------- SAFI 128 labeled VPN

TEST(LabeledVpnCodecTest, RoundTripsThroughLabeledEncoding) {
  // The labeled-VPN wire shape (SAFI 128, label stack + RD on every
  // NLRI, RD-prefixed next hops) must decode back to the bare prefixes —
  // at both next-hop widths.
  for (const int nh : {16, 32}) {
    UpdateEncodeOptions options;
    options.mp_labeled_vpn = true;
    options.mp_next_hop_len = nh;
    const auto original = dual_stack_update();
    const auto bytes = encode_bgp_update(original, options);
    ByteReader r(bytes);
    const auto decoded = decode_bgp_update(r, original.sender);
    EXPECT_TRUE(r.done()) << "nh=" << nh;
    EXPECT_EQ(decoded.announced, original.announced) << "nh=" << nh;
    EXPECT_EQ(decoded.withdrawn, original.withdrawn) << "nh=" << nh;
    EXPECT_EQ(decoded.attrs.as_path, original.attrs.as_path) << "nh=" << nh;
  }
}

TEST(LabeledVpnCodecTest, V4HandCraftedStackSkipsToThePrefix) {
  // VPN-IPv4 (AFI 1 / SAFI 128) with a TWO-entry label stack: only the
  // second entry has the bottom-of-stack bit, so the decoder must walk
  // the stack, then skip the RD, and surface the bare /24.
  ByteWriter w;
  w.u8(0x80);  // optional
  w.u8(14);    // MP_REACH_NLRI
  w.u8(3 + 1 + 12 + 1 + 1 + 6 + 8 + 3);  // prelude..NLRI
  w.u16(1);    // AFI: IPv4
  w.u8(128);   // SAFI: labeled VPN
  w.u8(12);    // next-hop length: RD + v4
  for (int i = 0; i < 12; ++i) w.u8(0x0A);
  w.u8(0);           // reserved
  w.u8(48 + 64 + 24);  // NLRI bits: two labels + RD + /24
  w.u8(0x00); w.u8(0x10); w.u8(0x00);  // label 256, BoS clear
  w.u8(0x00); w.u8(0x10); w.u8(0x11);  // label 257, BoS set
  for (int i = 0; i < 8; ++i) w.u8(0xBB);  // RD 48059:…, not modeled
  w.u8(198); w.u8(51); w.u8(100);          // 198.51.100.0/24
  ByteReader r(w.data());
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops, as4;
  MpNlriScratch mp;
  decode_path_attributes_into(r, attrs, false, hops, as4, &mp);
  ASSERT_EQ(mp.announced.size(), 1u);
  EXPECT_EQ(mp.announced[0], net::Prefix::must_parse("198.51.100.0/24"));
}

TEST(LabeledVpnCodecTest, WithdrawCompatLabelTerminatesTheStack) {
  // RFC 8277 §2.4: a withdraw's label field is 0x800000 — bottom-of-
  // stack CLEAR, so only the compat-value check can terminate the walk.
  ByteWriter w;
  w.u8(0x80);  // optional
  w.u8(15);    // MP_UNREACH_NLRI
  w.u8(3 + 1 + 3 + 8 + 3);
  w.u16(1);    // AFI: IPv4
  w.u8(128);   // SAFI: labeled VPN
  w.u8(24 + 64 + 24);
  w.u8(0x80); w.u8(0x00); w.u8(0x00);  // the compat label
  for (int i = 0; i < 8; ++i) w.u8(0);
  w.u8(203); w.u8(0); w.u8(113);  // 203.0.113.0/24
  ByteReader r(w.data());
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops, as4;
  MpNlriScratch mp;
  decode_path_attributes_into(r, attrs, false, hops, as4, &mp);
  ASSERT_EQ(mp.withdrawn.size(), 1u);
  EXPECT_EQ(mp.withdrawn[0], net::Prefix::must_parse("203.0.113.0/24"));
}

TEST(LabeledVpnCodecTest, MalformedLabeledNlriRejected) {
  // An NLRI length that cannot hold a label-stack entry (16 bits), and
  // one that holds a label but not the RD (24+32 bits), must both fail
  // cleanly — DecodeError, not a garbage prefix.
  for (const std::uint8_t bits : {std::uint8_t{16}, std::uint8_t{56}}) {
    ByteWriter w;
    w.u8(0x80);
    w.u8(15);  // MP_UNREACH_NLRI
    w.u8(static_cast<std::uint8_t>(3 + 1 + (bits + 7) / 8));
    w.u16(1);
    w.u8(128);
    w.u8(bits);
    for (int i = 0; i < (bits + 7) / 8; ++i) w.u8(0x05);
    ByteReader r(w.data());
    bgp::PathAttributes attrs;
    std::vector<bgp::Asn> hops, as4;
    MpNlriScratch mp;
    EXPECT_THROW(decode_path_attributes_into(r, attrs, false, hops, as4, &mp),
                 DecodeError)
        << "bits=" << int(bits);
  }
}

TEST(LabeledVpnCodecTest, BadLabeledNextHopLengthRejected) {
  // SAFI 128 next hops are RD-prefixed: a bare 4-byte v4 next hop under
  // the labeled SAFI is malformed.
  ByteWriter w;
  w.u8(0x80);
  w.u8(14);  // MP_REACH_NLRI
  w.u8(3 + 1 + 4 + 1);
  w.u16(1);
  w.u8(128);
  w.u8(4);  // unicast-width next hop under SAFI 128
  for (int i = 0; i < 4; ++i) w.u8(0x0A);
  w.u8(0);
  ByteReader r(w.data());
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops, as4;
  MpNlriScratch mp;
  EXPECT_THROW(decode_path_attributes_into(r, attrs, false, hops, as4, &mp),
               DecodeError);
}

TEST(LabeledVpnCodecTest, EveryByteTruncationRejected) {
  // The full truncation matrix over a labeled dual-stack update: every
  // proper prefix of the message must throw, never mis-decode. (The BGP
  // header's total-length field makes every cut detectable.)
  UpdateEncodeOptions options;
  options.mp_labeled_vpn = true;
  const auto bytes = encode_bgp_update(dual_stack_update(), options);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r(std::span(bytes.data(), cut));
    EXPECT_THROW(decode_bgp_update(r, 1), DecodeError) << "cut=" << cut;
  }
}

TEST(MpNlriCodecTest, AsSetSegmentThrowsUnsupportedRecord) {
  ByteWriter w;
  w.u8(0x40);  // transitive
  w.u8(2);     // AS_PATH
  w.u8(6);     // length
  w.u8(1);     // AS_SET
  w.u8(1);     // one hop
  w.u32(65001);
  ByteReader r(w.data());
  EXPECT_THROW(decode_path_attributes(r), UnsupportedRecord);
}

TEST(ElemReaderTest, DualStackUpdateFansOutMpElems) {
  UpdateRecord rec;
  rec.peer_asn = 9;
  rec.local_asn = 64512;
  rec.peer_ip = net::IpAddress::v4(0x0A000009);
  rec.timestamp = SimTime::at_seconds(50);
  rec.update.sender = 9;
  rec.update.attrs.as_path = bgp::AsPath({9, 65001});
  rec.update.announced = {net::Prefix::must_parse("10.0.0.0/24"),
                          net::Prefix::must_parse("2001:db8::/32")};
  rec.update.withdrawn = {net::Prefix::must_parse("2001:db8:dead::/48")};
  const auto bytes = encode_update_record(rec);
  const auto elems = read_elems(bytes);
  ASSERT_EQ(elems.size(), 3u);
  EXPECT_EQ(elems[0].type, ElemType::kAnnounce);
  EXPECT_EQ(elems[0].prefix, net::Prefix::must_parse("10.0.0.0/24"));
  EXPECT_EQ(elems[1].type, ElemType::kAnnounce);
  EXPECT_EQ(elems[1].prefix, net::Prefix::must_parse("2001:db8::/32"));
  EXPECT_EQ(elems[2].type, ElemType::kWithdraw);
  EXPECT_EQ(elems[2].prefix, net::Prefix::must_parse("2001:db8:dead::/48"));
}

TEST(ElemTest, ToStringFormats) {
  BgpElem e;
  e.type = ElemType::kAnnounce;
  e.peer_asn = 5;
  e.prefix = net::Prefix::must_parse("10.0.0.0/24");
  e.attrs.as_path = bgp::AsPath({5, 6});
  const auto s = e.to_string();
  EXPECT_NE(s.find("A|"), std::string::npos);
  EXPECT_NE(s.find("AS5"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.0/24"), std::string::npos);
}

}  // namespace
}  // namespace artemis::mrt

// Network-level BGP dynamics: failover, withdrawal cascades, competing
// origins — the behaviours the hijack experiments depend on, exercised
// directly on small hand-built topologies.
#include <gtest/gtest.h>

#include "artemis/detection.hpp"
#include "artemis/mitigation.hpp"
#include "artemis/monitoring.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"

namespace artemis::sim {
namespace {

const net::Prefix kPrefix = net::Prefix::must_parse("10.0.0.0/23");

// Diamond: 1 -- 2 and 1 -- 3 (customers), both 2 and 3 provide for 4.
topo::AsGraph diamond() {
  topo::AsGraph g;
  g.add_as(1, topo::Tier::kTier1);
  g.add_as(2, topo::Tier::kTier2);
  g.add_as(3, topo::Tier::kTier2);
  g.add_as(4, topo::Tier::kStub);
  g.add_customer_link(1, 2);
  g.add_customer_link(1, 3);
  g.add_customer_link(2, 4);
  g.add_customer_link(3, 4);
  return g;
}

NetworkParams fast_params() {
  NetworkParams params;
  params.mrai = SimDuration::zero();
  return params;
}

TEST(NetworkDynamicsTest, MultihomedFailover) {
  const auto graph = diamond();
  Network network(graph, fast_params(), Rng(1));
  network.speaker(4).originate(kPrefix);
  network.run_to_convergence();

  // AS1 reaches 4 via one of its two customers.
  const auto* before = network.speaker(1).best_route(kPrefix);
  ASSERT_NE(before, nullptr);
  const bgp::Asn first_hop = before->learned_from;
  ASSERT_TRUE(first_hop == 2 || first_hop == 3);

  // Kill the active path by withdrawing at the stub toward that provider:
  // simulate link failure by having the transit lose its route — simplest
  // equivalent: the origin withdraws and re-announces; the network must
  // re-converge onto a consistent state (no stuck stale routes).
  network.speaker(4).withdraw_origin(kPrefix);
  network.run_to_convergence();
  EXPECT_EQ(network.speaker(1).best_route(kPrefix), nullptr);
  EXPECT_EQ(network.speaker(2).best_route(kPrefix), nullptr);
  EXPECT_EQ(network.speaker(3).best_route(kPrefix), nullptr);

  network.speaker(4).originate(kPrefix);
  network.run_to_convergence();
  ASSERT_NE(network.speaker(1).best_route(kPrefix), nullptr);
  EXPECT_EQ(network.resolve_origin(1, kPrefix.address()), 4u);
}

TEST(NetworkDynamicsTest, WithdrawCascadeReachesEveryone) {
  // Chain: 1 <- 2 <- 3 <- 4(origin), plus peer 5 of 1.
  topo::AsGraph g;
  for (bgp::Asn a = 1; a <= 5; ++a) g.add_as(a);
  g.add_customer_link(1, 2);
  g.add_customer_link(2, 3);
  g.add_customer_link(3, 4);
  g.add_peer_link(1, 5);
  NetworkParams params;
  params.mrai = SimDuration::seconds(10);  // pacing on: cascade takes time
  Network network(g, params, Rng(2));

  network.speaker(4).originate(kPrefix);
  network.run_to_convergence();
  EXPECT_EQ(network.resolve_origin(5, kPrefix.address()), 4u);
  const SimTime converged = network.simulator().now();

  network.speaker(4).withdraw_origin(kPrefix);
  network.run_to_convergence();
  for (const bgp::Asn asn : {1u, 2u, 3u, 5u}) {
    EXPECT_EQ(network.resolve_origin(asn, kPrefix.address()), bgp::kNoAsn)
        << "AS" << asn;
  }
  // The withdrawal needed at least one pacing interval to cross the chain.
  EXPECT_GT(network.simulator().now() - converged, SimDuration::seconds(5));
}

TEST(NetworkDynamicsTest, CompetingOriginsPartitionTheGraph) {
  // Two origins announce the same prefix from opposite ends of a chain:
  // 1 <- 2 <- 3, 1 <- 4; origin A = 3, origin B = 4.
  topo::AsGraph g;
  for (bgp::Asn a = 1; a <= 4; ++a) g.add_as(a);
  g.add_customer_link(1, 2);
  g.add_customer_link(2, 3);
  g.add_customer_link(1, 4);
  Network network(g, fast_params(), Rng(3));

  network.speaker(3).originate(kPrefix);
  network.run_to_convergence();
  network.speaker(4).originate(kPrefix);
  network.run_to_convergence();

  // Each origin keeps itself; AS2 stays with its customer 3; AS1 prefers
  // its direct customer 4 (shorter customer path).
  EXPECT_EQ(network.resolve_origin(3, kPrefix.address()), 3u);
  EXPECT_EQ(network.resolve_origin(4, kPrefix.address()), 4u);
  EXPECT_EQ(network.resolve_origin(2, kPrefix.address()), 3u);
  EXPECT_EQ(network.resolve_origin(1, kPrefix.address()), 4u);
}

TEST(NetworkDynamicsTest, MoreSpecificAlwaysBeatsShorterPath) {
  // AS1 has a direct customer route for the /23 but learns a /24 from two
  // hops away: LPM must send /24 addresses the long way.
  topo::AsGraph g;
  for (bgp::Asn a = 1; a <= 4; ++a) g.add_as(a);
  g.add_customer_link(1, 2);       // 2 announces the /23
  g.add_customer_link(1, 3);
  g.add_customer_link(3, 4);       // 4 announces a /24 inside it
  Network network(g, fast_params(), Rng(4));

  network.speaker(2).originate(kPrefix);
  network.speaker(4).originate(net::Prefix::must_parse("10.0.1.0/24"));
  network.run_to_convergence();

  EXPECT_EQ(network.resolve_origin(1, net::IpAddress::parse("10.0.0.1").value()), 2u);
  EXPECT_EQ(network.resolve_origin(1, net::IpAddress::parse("10.0.1.1").value()), 4u);
}

TEST(NetworkDynamicsTest, PacedConvergenceScalesWithDepth) {
  // Convergence time grows with chain depth under pacing.
  auto chain_convergence = [](int depth) {
    topo::AsGraph g;
    for (bgp::Asn a = 1; a <= static_cast<bgp::Asn>(depth); ++a) g.add_as(a);
    for (int a = 1; a < depth; ++a) {
      g.add_customer_link(static_cast<bgp::Asn>(a), static_cast<bgp::Asn>(a + 1));
    }
    NetworkParams params;
    params.mrai = SimDuration::seconds(30);
    Network network(g, params, Rng(42));
    network.speaker(static_cast<bgp::Asn>(depth)).originate(kPrefix);
    network.run_to_convergence();
    return network.simulator().now();
  };
  EXPECT_LT(chain_convergence(3), chain_convergence(9));
}

}  // namespace
}  // namespace artemis::sim

namespace artemis::core {
namespace {

TEST(MultiPrefixTest, MonitoringTracksSeveralOwnedPrefixesIndependently) {
  Config config;
  for (const auto text : {"10.0.0.0/23", "192.0.2.0/24"}) {
    OwnedPrefix owned;
    owned.prefix = net::Prefix::must_parse(text);
    owned.legitimate_origins.insert(65001);
    config.add_owned(std::move(owned));
  }
  MonitoringService monitoring(config);

  auto obs = [](bgp::Asn vantage, std::string_view prefix, bgp::Asn origin) {
    feeds::Observation o;
    o.type = feeds::ObservationType::kAnnouncement;
    o.vantage = vantage;
    o.prefix = net::Prefix::must_parse(prefix);
    o.attrs.as_path = bgp::AsPath({vantage, origin});
    return o;
  };
  monitoring.process(obs(9, "10.0.0.0/23", 65001));
  monitoring.process(obs(9, "192.0.2.0/24", 65001));
  monitoring.process(obs(9, "192.0.2.0/24", 666));  // second prefix hijacked

  EXPECT_EQ(monitoring.vantage_legitimate(9, net::Prefix::must_parse("10.0.0.0/23")),
            true);
  EXPECT_EQ(monitoring.vantage_legitimate(9, net::Prefix::must_parse("192.0.2.0/24")),
            false);
}

TEST(MultiPrefixTest, DetectionKeepsPerPrefixGroundTruth) {
  Config config;
  OwnedPrefix a;
  a.prefix = net::Prefix::must_parse("10.0.0.0/23");
  a.legitimate_origins.insert(65001);
  config.add_owned(std::move(a));
  OwnedPrefix b;
  b.prefix = net::Prefix::must_parse("192.0.2.0/24");
  b.legitimate_origins.insert(65002);  // different origin!
  config.add_owned(std::move(b));
  DetectionService detector(config);

  auto obs = [](std::string_view prefix, bgp::Asn origin) {
    feeds::Observation o;
    o.type = feeds::ObservationType::kAnnouncement;
    o.vantage = 9;
    o.source = "test";
    o.prefix = net::Prefix::must_parse(prefix);
    o.attrs.as_path = bgp::AsPath({9, origin});
    return o;
  };
  // Each origin is valid only for its own prefix.
  detector.process(obs("10.0.0.0/23", 65001));
  detector.process(obs("192.0.2.0/24", 65002));
  EXPECT_TRUE(detector.alerts().empty());
  detector.process(obs("10.0.0.0/23", 65002));
  detector.process(obs("192.0.2.0/24", 65001));
  EXPECT_EQ(detector.alerts().size(), 2u);
}

TEST(Ipv6Test, DetectionAndPlanningWorkOnV6Prefixes) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("2001:db8::/32");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);

  feeds::Observation obs;
  obs.type = feeds::ObservationType::kAnnouncement;
  obs.vantage = 9;
  obs.source = "test";
  obs.prefix = net::Prefix::must_parse("2001:db8::/32");
  obs.attrs.as_path = bgp::AsPath({9, 666});
  detector.process(obs);
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].type, HijackType::kExactOrigin);

  // De-aggregation plans split v6 prefixes just the same (floor /48).
  MitigationPolicy policy;
  policy.deaggregation_floor = 48;
  policy.reannounce_exact = false;
  const auto plan = plan_mitigation(net::Prefix::must_parse("2001:db8::/32"),
                                    net::Prefix::must_parse("2001:db8::/32"), policy);
  EXPECT_TRUE(plan.deaggregation_possible);
  ASSERT_EQ(plan.announcements.size(), 2u);
  EXPECT_EQ(plan.announcements[0].to_string(), "2001:db8::/33");
  EXPECT_EQ(plan.announcements[1].to_string(), "2001:db8:8000::/33");
}

}  // namespace
}  // namespace artemis::core

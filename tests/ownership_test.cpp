// The multi-tenant ownership API: frozen tables, tenant-scoped refs,
// schema v2 configs, epoch publication, and tenant-scoped alerting.
#include <gtest/gtest.h>

#include "artemis/detection.hpp"
#include "artemis/ownership.hpp"

namespace artemis::core {
namespace {

OwnedPrefix make_owned(std::string_view prefix, bgp::Asn origin) {
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse(prefix);
  owned.legitimate_origins.insert(origin);
  return owned;
}

/// Two tenants with adjacent space: acme owns 10.0.0.0/23, globex owns
/// 10.1.0.0/24 and 2001:db8::/32.
Config two_tenant_config() {
  Config config;
  const TenantId acme = config.add_tenant("acme");
  const TenantId globex = config.add_tenant("globex");
  config.add_owned(acme, make_owned("10.0.0.0/23", 65001));
  config.add_owned(globex, make_owned("10.1.0.0/24", 65002));
  config.add_owned(globex, make_owned("2001:db8::/32", 65003));
  return config;
}

feeds::Observation make_obs(std::string_view prefix, std::vector<bgp::Asn> path,
                            std::string source = "ris-live", bgp::Asn vantage = 9,
                            double at_seconds = 100.0) {
  feeds::Observation obs;
  obs.type = feeds::ObservationType::kAnnouncement;
  obs.source = std::move(source);
  obs.vantage = vantage;
  obs.prefix = net::Prefix::must_parse(prefix);
  obs.attrs.as_path = bgp::AsPath(std::move(path));
  obs.event_time = SimTime::at_seconds(at_seconds - 5);
  obs.delivered_at = SimTime::at_seconds(at_seconds);
  return obs;
}

TEST(OwnershipTableTest, MatchCarriesOwningTenant) {
  const auto table = two_tenant_config().build_table();
  const auto acme_hit = table->match(net::Prefix::must_parse("10.0.1.0/24"));
  ASSERT_TRUE(acme_hit);
  EXPECT_EQ(acme_hit.tenant, 0u);
  EXPECT_EQ(table->entry(acme_hit).prefix.to_string(), "10.0.0.0/23");

  const auto globex_hit = table->match(net::Prefix::must_parse("10.1.0.0/24"));
  ASSERT_TRUE(globex_hit);
  EXPECT_EQ(globex_hit.tenant, 1u);

  const auto v6_hit = table->match(net::Prefix::must_parse("2001:db8:1::/48"));
  ASSERT_TRUE(v6_hit);
  EXPECT_EQ(v6_hit.tenant, 1u);

  EXPECT_FALSE(table->match(net::Prefix::must_parse("192.0.2.0/24")));
}

TEST(OwnershipTableTest, CrossTenantMostSpecificWins) {
  // Provider-owned /16 with a customer-delegated /24 carved out: the /24
  // observation resolves to the customer tenant, the rest to the provider.
  Config config;
  const TenantId provider = config.add_tenant("provider");
  const TenantId customer = config.add_tenant("customer");
  config.add_owned(provider, make_owned("172.16.0.0/16", 64500));
  config.add_owned(customer, make_owned("172.16.5.0/24", 64501));
  const auto table = config.build_table();

  const auto inside = table->match(net::Prefix::must_parse("172.16.5.0/25"));
  ASSERT_TRUE(inside);
  EXPECT_EQ(inside.tenant, customer);
  const auto outside = table->match(net::Prefix::must_parse("172.16.9.0/24"));
  ASSERT_TRUE(outside);
  EXPECT_EQ(outside.tenant, provider);
}

TEST(OwnershipTableTest, PolicyFallsBackForUnknownTenant) {
  Config config;
  MitigationPolicy strict;
  strict.auto_mitigate = false;
  strict.deaggregation_floor = 20;
  config.add_tenant("acme", strict);
  const auto table = config.build_table();

  EXPECT_FALSE(table->policy(0).auto_mitigate);
  EXPECT_EQ(table->policy(0).deaggregation_floor, 20);
  // A stale id (tenant removed by a reload) degrades to defaults.
  EXPECT_TRUE(table->policy(999).auto_mitigate);
  EXPECT_EQ(table->tenant(999), nullptr);
  EXPECT_FALSE(table->any_auto_mitigate());
}

TEST(OwnershipTableTest, AnyAutoMitigateSpansTenants) {
  Config config;
  MitigationPolicy off;
  off.auto_mitigate = false;
  config.add_tenant("alert-only", off);
  config.add_tenant("auto");
  EXPECT_TRUE(config.build_table()->any_auto_mitigate());
}

TEST(OwnershipTableTest, VersionsAreDistinct) {
  const Config config = two_tenant_config();
  const auto a = config.build_table();
  const auto b = config.build_table();
  EXPECT_NE(a->version(), b->version());
  EXPECT_NE(a->version(), 0u);
}

TEST(OwnershipTableTest, EmptyConfigStillResolvesDefaultTenant) {
  const auto table = Config{}.build_table();
  EXPECT_TRUE(table->empty());
  ASSERT_EQ(table->tenants().size(), 1u);
  EXPECT_EQ(table->tenants()[0].name, "default");
  EXPECT_TRUE(table->policy(kDefaultTenantId).auto_mitigate);
}

TEST(OwnershipStoreTest, PublishBumpsEpochAndSwapsSnapshot) {
  const Config config = two_tenant_config();
  OwnershipStore store(config.build_table());
  const auto first = store.snapshot();
  const auto epoch0 = store.epoch();

  store.publish(config.build_table());
  EXPECT_EQ(store.epoch(), epoch0 + 1);
  const auto second = store.snapshot();
  EXPECT_NE(first.get(), second.get());
  // The old snapshot stays valid for readers that captured it.
  EXPECT_TRUE(first->match(net::Prefix::must_parse("10.0.0.0/23")));
}

TEST(ConfigV2Test, ParsesTenantsWithPerTenantPolicy) {
  const auto config = Config::from_json_text(R"({
    "schema_version": 2,
    "tenants": [
      {"name": "acme",
       "prefixes": [{"prefix": "10.0.0.0/23", "origins": [65001]}],
       "mitigation": {"auto_mitigate": false}},
      {"name": "globex",
       "prefixes": [{"prefix": "10.1.0.0/24", "origins": [65002]}]}
    ]
  })");
  ASSERT_EQ(config.tenants().size(), 2u);
  EXPECT_EQ(config.tenants()[0].name, "acme");
  EXPECT_FALSE(config.tenants()[0].mitigation.auto_mitigate);
  EXPECT_TRUE(config.tenants()[1].mitigation.auto_mitigate);
  ASSERT_EQ(config.owned().size(), 2u);
  EXPECT_EQ(config.owned()[0].tenant, 0u);
  EXPECT_EQ(config.owned()[1].tenant, 1u);
}

TEST(ConfigV2Test, TenantsArrayImpliesVersionTwo) {
  const auto config = Config::from_json_text(
      R"({"tenants":[{"name":"a","prefixes":[{"prefix":"10.0.0.0/8","origins":[1]}]}]})");
  EXPECT_EQ(config.tenants().size(), 1u);
  EXPECT_EQ(config.tenants()[0].name, "a");
}

TEST(ConfigV2Test, RejectsSchemaMismatches) {
  // v2 declared but no tenants array.
  EXPECT_THROW(Config::from_json_text(
                   R"({"schema_version":2,"prefixes":[]})"),
               std::invalid_argument);
  // tenants array with a v1 version stamp.
  EXPECT_THROW(Config::from_json_text(
                   R"({"schema_version":1,"tenants":[]})"),
               std::invalid_argument);
  // Duplicate tenant names.
  EXPECT_THROW(
      Config::from_json_text(
          R"({"tenants":[{"name":"a","prefixes":[]},{"name":"a","prefixes":[]}]})"),
      std::invalid_argument);
  // Empty tenant name.
  EXPECT_THROW(
      Config::from_json_text(R"({"tenants":[{"name":"","prefixes":[]}]})"),
      std::invalid_argument);
}

TEST(ConfigV2Test, RoundTripsThroughJson) {
  const Config config = two_tenant_config();
  const auto round = Config::from_json(config.to_json());
  ASSERT_EQ(round.tenants().size(), 2u);
  EXPECT_EQ(round.tenants()[1].name, "globex");
  ASSERT_EQ(round.owned().size(), config.owned().size());
  for (std::size_t i = 0; i < round.owned().size(); ++i) {
    EXPECT_EQ(round.owned()[i].prefix, config.owned()[i].prefix);
    EXPECT_EQ(round.owned()[i].tenant, config.owned()[i].tenant);
  }
  EXPECT_EQ(round.to_json().dump(), config.to_json().dump());
}

TEST(ConfigV2Test, V1ConfigsKeepTheirByteShape) {
  // A single-operator config must serialize in the v1 shape regardless of
  // the multi-tenant machinery underneath (golden-fixture compatibility).
  const auto config = Config::from_json_text(
      R"({"prefixes":[{"prefix":"10.0.0.0/23","origins":[65001]}]})");
  const auto text = config.to_json().dump();
  EXPECT_EQ(text.find("tenants"), std::string::npos);
  EXPECT_EQ(text.find("schema_version"), std::string::npos);
  EXPECT_NE(text.find("\"prefixes\""), std::string::npos);
  ASSERT_EQ(config.tenants().size(), 1u);
  EXPECT_EQ(config.tenants()[0].name, "default");
}

TEST(ConfigV2Test, AddOwnedRejectsUnknownTenant) {
  Config config;
  config.add_tenant("acme");
  EXPECT_THROW(config.add_owned(7, make_owned("10.0.0.0/8", 1)),
               std::invalid_argument);
}

TEST(TenantAlertTest, AlertsCarryOwningTenant) {
  DetectionService detector(two_tenant_config());
  detector.process(make_obs("10.0.0.0/23", {9, 666}));   // acme's space
  detector.process(make_obs("10.1.0.0/24", {9, 666}));   // globex's space
  ASSERT_EQ(detector.alerts().size(), 2u);
  EXPECT_EQ(detector.alerts()[0].tenant, 0u);
  EXPECT_EQ(detector.alerts()[0].tenant_name, "acme");
  EXPECT_EQ(detector.alerts()[1].tenant, 1u);
  EXPECT_EQ(detector.alerts()[1].tenant_name, "globex");
  // Tenant-scoped display forms.
  EXPECT_NE(detector.alerts()[1].to_string().find("tenant=globex"),
            std::string::npos);
  EXPECT_NE(detector.alerts()[1].dedup_key().find("|t1"), std::string::npos);
}

TEST(TenantAlertTest, DefaultTenantKeepsV1AlertFormat) {
  Config config;
  config.add_owned(make_owned("10.0.0.0/23", 65001));
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  ASSERT_EQ(detector.alerts().size(), 1u);
  const auto& alert = detector.alerts()[0];
  EXPECT_EQ(alert.tenant, kDefaultTenantId);
  EXPECT_EQ(alert.to_string().find("tenant="), std::string::npos);
  EXPECT_EQ(alert.dedup_key().find("|t"), std::string::npos);
}

TEST(TenantAlertTest, ReloadMovingPrefixBetweenTenantsRaisesFreshAlert) {
  // The dedup key is tenant-scoped: when a reload reassigns a prefix, the
  // new owner's first alert must not be swallowed by the old owner's
  // dedup record.
  Config before;
  const TenantId acme = before.add_tenant("acme");
  before.add_tenant("globex");
  before.add_owned(acme, make_owned("10.0.0.0/23", 65001));

  DetectionService detector(before);
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  ASSERT_EQ(detector.alerts().size(), 1u);

  Config after;
  after.add_tenant("acme");
  const TenantId globex_after = after.add_tenant("globex");
  after.add_owned(globex_after, make_owned("10.0.0.0/23", 65001));
  detector.set_ownership(after.build_table());

  detector.process(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 9, 200.0));
  ASSERT_EQ(detector.alerts().size(), 2u);
  EXPECT_EQ(detector.alerts()[0].tenant_name, "acme");
  EXPECT_EQ(detector.alerts()[1].tenant_name, "globex");
  // Same prefix+offender under the SAME tenant would have deduped; the
  // old record is still there and still counts its own observations.
  EXPECT_EQ(detector.observation_count(detector.alerts()[0].key()), 1u);
  EXPECT_EQ(detector.observation_count(detector.alerts()[1].key()), 1u);
}

TEST(TenantAlertTest, ReloadPreservesDedupWithinUnchangedTenant) {
  const Config config = two_tenant_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  ASSERT_EQ(detector.alerts().size(), 1u);

  // Same logical config, new snapshot: the repeat observation dedups.
  detector.set_ownership(two_tenant_config().build_table());
  detector.process(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 9, 200.0));
  EXPECT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.observation_count(detector.alerts()[0].key()), 2u);
}

}  // namespace
}  // namespace artemis::core

// The batched/sharded observation pipeline (src/pipeline/).
//
// The two load-bearing suites are the oracles the ISSUE asks for:
//   * BatchVsLoopOracle — DetectionService::process_batch must equal
//     repeated process() exactly (alerts, counts, first-seen times).
//   * ShardedEquivalence — ShardedDetector{N=1} and {N=4}, inline and
//     threaded, must produce bit-identical merged output.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "artemis/detection.hpp"
#include "feeds/monitor_hub.hpp"
#include "pipeline/observation_batch.hpp"
#include "pipeline/sharded_detector.hpp"
#include "pipeline/spsc_ring.hpp"
#include "rpki/roa.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace artemis::pipeline {
namespace {

using core::AlertKey;
using core::Config;
using core::DetectionOptions;
using core::DetectionService;
using core::HijackAlert;
using core::OwnedPrefix;
using feeds::Observation;
using feeds::ObservationType;

Config make_config() {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  OwnedPrefix second;
  second.prefix = net::Prefix::must_parse("192.0.2.0/24");
  second.legitimate_origins.insert(65002);
  config.add_owned(std::move(second));
  return config;
}

Observation make_obs(std::string_view prefix, std::vector<bgp::Asn> path,
                     std::string source, double at_seconds,
                     ObservationType type = ObservationType::kAnnouncement) {
  Observation obs;
  obs.type = type;
  obs.source = std::move(source);
  obs.vantage = path.empty() ? 9 : path.front();
  obs.prefix = net::Prefix::must_parse(prefix);
  obs.attrs.as_path = bgp::AsPath(std::move(path));
  obs.event_time = SimTime::at_seconds(at_seconds - 5);
  obs.delivered_at = SimTime::at_seconds(at_seconds);
  return obs;
}

/// A mixed scenario stream: hijacks against both owned prefixes (exact,
/// sub-prefix, super-prefix), legitimate announcements, unrelated noise,
/// several sources and offenders, with bursty repetition — the shape a
/// real merged feed has.
std::vector<Observation> scenario_stream(std::uint64_t seed, int count) {
  Rng rng(seed);
  const std::vector<std::string> prefixes = {
      "10.0.0.0/23",    // owned #1 exact
      "10.0.1.0/24",    // sub-prefix of owned #1
      "10.0.0.0/16",    // super-prefix of owned #1
      "192.0.2.0/24",   // owned #2 exact
      "192.0.2.128/25", // sub-prefix of owned #2
      "203.0.113.0/24", // unrelated
      "198.51.100.0/24" // unrelated
  };
  const std::vector<bgp::Asn> origins = {666, 667, 65001, 65002};
  const std::vector<std::string> sources = {"ris-live", "bgpmon", "periscope"};
  std::vector<Observation> stream;
  stream.reserve(static_cast<std::size_t>(count));
  double t = 100.0;
  while (static_cast<int>(stream.size()) < count) {
    const auto& prefix = prefixes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(prefixes.size()) - 1))];
    const auto origin = origins[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const auto& source = sources[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    const auto burst = rng.uniform_int(1, 6);
    for (std::int64_t b = 0; b < burst && static_cast<int>(stream.size()) < count; ++b) {
      t += 0.25;
      stream.push_back(make_obs(prefix, {9, 3356, origin}, source, t));
    }
  }
  return stream;
}

void expect_same_alert(const HijackAlert& a, const HijackAlert& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.owned_prefix, b.owned_prefix);
  EXPECT_EQ(a.observed_prefix, b.observed_prefix);
  EXPECT_EQ(a.offender, b.offender);
  EXPECT_EQ(a.observed_path.to_string(), b.observed_path.to_string());
  EXPECT_EQ(a.vantage, b.vantage);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.event_time, b.event_time);
  EXPECT_EQ(a.detected_at, b.detected_at);
}

// ---------------------------------------------------------------- SpscRing

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  SpscRing<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRingTest, FifoOrderAndWraparound) {
  SpscRing<int> ring(4);  // capacity 4
  int out = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(round * 4 + i));
    EXPECT_FALSE(ring.try_push(999));  // full
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 4 + i);
    }
    EXPECT_FALSE(ring.try_pop(out));  // empty
  }
}

TEST(SpscRingTest, CrossThreadTransferPreservesSequence) {
  SpscRing<int> ring(64);
  constexpr int kCount = 100000;
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    int value = 0;
    while (static_cast<int>(received.size()) < kCount) {
      if (ring.try_pop(value)) {
        received.push_back(value);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(int{i})) std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

// --------------------------------------------------------- ObservationBatch

TEST(ObservationBatchTest, ClearRetainsElementsForReuse) {
  ObservationBatch batch;
  batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  batch.push_back(make_obs("10.0.1.0/24", {9, 667}, "bgpmon", 101));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.view().size(), 2u);
  const feeds::Observation* slot0 = &batch[0];
  batch.clear();
  EXPECT_TRUE(batch.empty());
  // emplace_back after clear hands back the same storage.
  EXPECT_EQ(&batch.emplace_back(), slot0);
  EXPECT_EQ(batch.size(), 1u);
}

TEST(ObservationBatchTest, PopBackUndoesEmplace) {
  ObservationBatch batch;
  batch.emplace_back();
  batch.pop_back();
  EXPECT_TRUE(batch.empty());
}

// ------------------------------------------------------- batch-vs-loop oracle

TEST(PipelineOracleTest, ProcessBatchEqualsRepeatedProcess) {
  const Config config = make_config();
  const auto stream = scenario_stream(42, 3000);

  DetectionService loop_service(config);
  for (const auto& obs : stream) loop_service.process(obs);

  // Feed the identical stream through process_batch at several chunk
  // sizes, including pathological ones (1, prime, larger than stream).
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{997}, stream.size() + 1}) {
    DetectionService batch_service(config);
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - i);
      batch_service.process_batch({stream.data() + i, n});
    }
    EXPECT_EQ(batch_service.observations_processed(),
              loop_service.observations_processed());
    EXPECT_EQ(batch_service.observations_matched(), loop_service.observations_matched());
    ASSERT_EQ(batch_service.alerts().size(), loop_service.alerts().size())
        << "chunk=" << chunk;
    for (std::size_t i = 0; i < loop_service.alerts().size(); ++i) {
      expect_same_alert(batch_service.alerts()[i], loop_service.alerts()[i]);
      const AlertKey key = loop_service.alerts()[i].key();
      EXPECT_EQ(batch_service.observation_count(key), loop_service.observation_count(key));
      const auto* loop_seen = loop_service.first_seen_by_source(key);
      const auto* batch_seen = batch_service.first_seen_by_source(key);
      ASSERT_NE(loop_seen, nullptr);
      ASSERT_NE(batch_seen, nullptr);
      EXPECT_EQ(*loop_seen, *batch_seen);
    }
  }
}

TEST(PipelineOracleTest, MemoizationRespectsTypeAndPathChanges) {
  // Adjacent observations that differ ONLY in type / origin / first hop
  // must not reuse a stale classification.
  const Config config = make_config();
  DetectionService service(config);
  std::vector<Observation> batch;
  batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));    // hijack
  batch.push_back(make_obs("10.0.0.0/23", {9, 65001}, "ris-live", 101));  // legit
  batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 102));    // hijack again
  batch.push_back(make_obs("10.0.0.0/23", {9, 667}, "ris-live", 103));    // new offender
  batch.push_back(make_obs("10.0.0.0/23", {9, 667}, "ris-live", 104,
                           ObservationType::kWithdrawal));                // withdrawal
  service.process_batch(batch);
  EXPECT_EQ(service.alerts().size(), 2u);  // offenders 666 and 667
  EXPECT_EQ(service.observations_matched(), 3u);
  EXPECT_EQ(service.observations_processed(), 5u);
}

// The SIMD prescreen only engages on batches >= 16 with a small owned set
// and no ROA table; in every configuration the batch-vs-loop equivalence
// must hold bit-for-bit. These pin the prescreen's enable/disable edges
// that the generic oracle above exercises only incidentally.

/// Runs `stream` through process() one-by-one and through process_batch
/// as a single span, asserting identical counters and alerts.
void expect_batch_equals_loop(const Config& config, DetectionOptions options,
                              const std::vector<Observation>& stream) {
  DetectionService loop_service(config, options);
  for (const auto& obs : stream) loop_service.process(obs);
  DetectionService batch_service(config, options);
  batch_service.process_batch(stream);
  EXPECT_EQ(batch_service.observations_processed(),
            loop_service.observations_processed());
  EXPECT_EQ(batch_service.observations_matched(),
            loop_service.observations_matched());
  ASSERT_EQ(batch_service.alerts().size(), loop_service.alerts().size());
  for (std::size_t i = 0; i < loop_service.alerts().size(); ++i) {
    expect_same_alert(batch_service.alerts()[i], loop_service.alerts()[i]);
  }
}

TEST(PrescreenOracleTest, AllIrrelevantBatchSkipsButCountsEverything) {
  const Config config = make_config();
  std::vector<Observation> stream;
  for (int i = 0; i < 64; ++i) {  // >= 16: prescreen engages, zero overlap
    stream.push_back(make_obs("203.0.113.0/24", {9, 3356, 666}, "ris-live",
                              100.0 + i));
  }
  DetectionService service(config);
  service.process_batch(stream);
  EXPECT_EQ(service.observations_processed(), 64u);  // skipped != uncounted
  EXPECT_EQ(service.observations_matched(), 0u);
  EXPECT_TRUE(service.alerts().empty());
  expect_batch_equals_loop(config, {}, stream);
}

TEST(PrescreenOracleTest, MixedBatchWithWithdrawalsAndSubprefixes) {
  const Config config = make_config();
  auto stream = scenario_stream(21, 500);
  // Withdrawals never classify; the prescreen must mark them irrelevant
  // even when their prefix overlaps owned space.
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    stream[i].type = ObservationType::kWithdrawal;
    stream[i].attrs = {};
  }
  expect_batch_equals_loop(config, {}, stream);
}

TEST(PrescreenOracleTest, RoaTableDisablesPrescreenNotDetection) {
  // With a ROA table, observations outside owned space can still raise
  // kRpkiInvalid — the prescreen must stand down rather than skip them.
  const Config config = make_config();
  rpki::RoaTable roas;
  roas.add({net::Prefix::must_parse("203.0.113.0/24"), 64500, 0});
  DetectionOptions options;
  options.roa_table = &roas;
  std::vector<Observation> stream;
  for (int i = 0; i < 48; ++i) {
    // Outside owned space, violates the ROA: must alert despite being
    // prescreen-irrelevant by the overlap test.
    stream.push_back(make_obs("203.0.113.0/24", {9, 3356, 666}, "ris-live",
                              100.0 + i));
  }
  DetectionService service(config, options);
  service.process_batch(stream);
  EXPECT_GT(service.alerts().size(), 0u);
  expect_batch_equals_loop(config, options, stream);
}

TEST(PrescreenOracleTest, LargeOwnedSetFallsBackToScalarPath) {
  // > 16 owned prefixes: the O(batch x owned) compare loop would cost
  // more than it saves, so the prescreen disables itself. Equivalence
  // must hold either way.
  Config config = make_config();
  for (int i = 0; i < 20; ++i) {
    OwnedPrefix extra;
    extra.prefix = net::Prefix::must_parse("172.16." + std::to_string(i) + ".0/24");
    extra.legitimate_origins.insert(65010);
    config.add_owned(std::move(extra));
  }
  expect_batch_equals_loop(config, {}, scenario_stream(23, 400));
}

// ------------------------------------------------------- sharded equivalence

TEST(ShardedDetectorTest, ShardOfIsStableAndInRange) {
  const auto p = net::Prefix::must_parse("10.0.0.0/23");
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    const auto s = ShardedDetector::shard_of(p, n);
    EXPECT_LT(s, n);
    EXPECT_EQ(s, ShardedDetector::shard_of(p, n));
  }
  EXPECT_EQ(ShardedDetector::shard_of(p, 1), 0u);
}

TEST(ShardedDetectorTest, ShardedVsSingleThreadEquivalence) {
  const Config config = make_config();
  const auto stream = scenario_stream(7, 4000);

  // Reference: deterministic single-threaded N=1 mode.
  ShardedDetectorOptions ref_options;
  ref_options.shards = 1;
  ShardedDetector reference(config, ref_options);
  reference.submit_batch(stream);

  auto check = [&](ShardedDetector& other) {
    EXPECT_EQ(other.observations_processed(), reference.observations_processed());
    EXPECT_EQ(other.observations_matched(), reference.observations_matched());
    const auto ref_alerts = reference.merged_alerts();
    const auto other_alerts = other.merged_alerts();
    ASSERT_EQ(other_alerts.size(), ref_alerts.size());
    for (std::size_t i = 0; i < ref_alerts.size(); ++i) {
      expect_same_alert(other_alerts[i], ref_alerts[i]);
      const AlertKey key = ref_alerts[i].key();
      EXPECT_EQ(other.observation_count(key), reference.observation_count(key));
      const auto* ref_seen = reference.first_seen_by_source(key);
      const auto* other_seen = other.first_seen_by_source(key);
      ASSERT_NE(ref_seen, nullptr);
      ASSERT_NE(other_seen, nullptr);
      EXPECT_EQ(*ref_seen, *other_seen);  // identical per-source first-seen times
    }
  };

  {
    ShardedDetectorOptions options;
    options.shards = 4;
    ShardedDetector inline4(config, options);
    inline4.submit_batch(stream);
    // Observations of one prefix all live in one shard.
    std::uint64_t across = 0;
    for (std::size_t s = 0; s < inline4.shard_count(); ++s) {
      across += inline4.shard(s).observations_processed();
    }
    EXPECT_EQ(across, stream.size());
    check(inline4);
  }
  {
    ShardedDetectorOptions options;
    options.shards = 4;
    options.threaded = true;
    options.queue_capacity = 256;  // small ring: exercises backpressure
    options.drain_batch = 32;
    ShardedDetector threaded4(config, options);
    for (std::size_t i = 0; i < stream.size(); i += 100) {
      threaded4.submit_batch({stream.data() + i, std::min<std::size_t>(100, stream.size() - i)});
    }
    threaded4.flush();
    check(threaded4);
    threaded4.stop();
    check(threaded4);  // stop() must not lose or duplicate anything
  }
  {
    ShardedDetectorOptions options;
    options.shards = 1;
    options.threaded = true;
    ShardedDetector threaded1(config, options);
    threaded1.submit_batch(stream);
    threaded1.flush();
    check(threaded1);
  }
}

TEST(ShardedDetectorTest, AlertHandlersFireOnEveryShard) {
  const Config config = make_config();
  ShardedDetectorOptions options;
  options.shards = 4;
  ShardedDetector detector(config, options);
  std::vector<HijackAlert> seen;
  detector.on_alert([&](const HijackAlert& alert) { seen.push_back(alert); });
  const auto stream = scenario_stream(9, 1000);
  detector.submit_batch(stream);
  EXPECT_EQ(seen.size(), detector.merged_alerts().size());
  EXPECT_GT(seen.size(), 0u);
}

TEST(ShardedDetectorTest, ThreadedLateHandlerRegistrationThrows) {
  const Config config = make_config();
  ShardedDetectorOptions options;
  options.shards = 2;
  options.threaded = true;
  ShardedDetector detector(config, options);
  detector.on_alert([](const HijackAlert&) {});  // before submit: fine
  detector.submit(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  // After observations are in flight, registration would race the
  // workers' handler iteration.
  EXPECT_THROW(detector.on_alert([](const HijackAlert&) {}), std::logic_error);
  detector.flush();
}

TEST(ShardedDetectorTest, AttachConsumesHubBatches) {
  const Config config = make_config();
  feeds::MonitorHub hub;
  ShardedDetector detector(config, {});
  detector.attach(hub);
  const auto stream = scenario_stream(11, 500);
  hub.publish_batch(stream);
  EXPECT_EQ(detector.observations_processed(), stream.size());
  EXPECT_EQ(hub.total_observations(), stream.size());
  EXPECT_GT(detector.merged_alerts().size(), 0u);
}

TEST(ShardedDetectorTest, DeterminismMatrixAcrossModesPoliciesAndPinning) {
  // The acceptance matrix: shards {1,4} x {inline,threaded} x wait policy
  // {busy_poll,futex} x {pinned,unpinned} all reproduce the N=1 inline
  // reference bit-for-bit. (Inline dispatch never touches the ring, so
  // policy/pin only multiply the threaded legs.)
  const Config config = make_config();
  const auto stream = scenario_stream(13, 3000);

  ShardedDetectorOptions ref_options;
  ref_options.shards = 1;
  ShardedDetector reference(config, ref_options);
  reference.submit_batch(stream);
  const auto ref_alerts = reference.merged_alerts();
  ASSERT_GT(ref_alerts.size(), 0u);

  auto check = [&](ShardedDetector& other) {
    EXPECT_EQ(other.observations_processed(), reference.observations_processed());
    EXPECT_EQ(other.observations_matched(), reference.observations_matched());
    const auto other_alerts = other.merged_alerts();
    ASSERT_EQ(other_alerts.size(), ref_alerts.size());
    for (std::size_t i = 0; i < ref_alerts.size(); ++i) {
      expect_same_alert(other_alerts[i], ref_alerts[i]);
    }
  };

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    {
      ShardedDetectorOptions options;
      options.shards = shards;
      ShardedDetector inline_run(config, options);
      inline_run.submit_batch(stream);
      check(inline_run);
    }
    for (const WaitPolicy policy : {WaitPolicy::kBusyPoll, WaitPolicy::kFutex}) {
      for (const bool pin : {false, true}) {
        ShardedDetectorOptions options;
        options.shards = shards;
        options.threaded = true;
        options.wait_policy = policy;
        options.pin_workers = pin;
        options.queue_capacity = 256;  // small ring: exercise backpressure
        options.drain_batch = 32;
        ShardedDetector threaded(config, options);
        // Uneven submit chunks so staged partial batches get published.
        std::size_t i = 0;
        for (std::size_t chunk = 1; i < stream.size(); chunk = chunk % 97 + 13) {
          const std::size_t n = std::min(chunk, stream.size() - i);
          threaded.submit_batch({stream.data() + i, n});
          i += n;
        }
        threaded.flush();
        check(threaded);
        threaded.stop();
        check(threaded);  // stop() must not lose or duplicate anything
      }
    }
  }
}

TEST(ShardedDetectorTest, MetricsDoNotPerturbDeterminismMatrix) {
  // Telemetry is observation-only by contract: re-running the acceptance
  // matrix with a registry wired in must reproduce the metrics-OFF N=1
  // inline reference bit-for-bit — alerts, counts, first-seen — while
  // the merged counters account for every observation and alert.
  const Config config = make_config();
  const auto stream = scenario_stream(13, 3000);

  ShardedDetectorOptions ref_options;  // no registry: the plain baseline
  ref_options.shards = 1;
  ShardedDetector reference(config, ref_options);
  reference.submit_batch(stream);
  const auto ref_alerts = reference.merged_alerts();
  ASSERT_GT(ref_alerts.size(), 0u);

  auto check = [&](ShardedDetector& other,
                   const telemetry::MetricsRegistry& registry) {
    EXPECT_EQ(other.observations_processed(), reference.observations_processed());
    const auto other_alerts = other.merged_alerts();
    ASSERT_EQ(other_alerts.size(), ref_alerts.size());
    for (std::size_t i = 0; i < ref_alerts.size(); ++i) {
      expect_same_alert(other_alerts[i], ref_alerts[i]);
    }
    // The merged per-shard cells see the whole stream and every alert,
    // and each alert recorded its detection delay.
    const std::string text = registry.render_prometheus();
    EXPECT_NE(text.find("artemis_detection_observations_total " +
                        std::to_string(stream.size())),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("artemis_detection_alerts_total " +
                        std::to_string(ref_alerts.size())),
              std::string::npos)
        << text;
    const auto delay =
        registry.histogram_snapshot("artemis_detection_delay_seconds");
    EXPECT_EQ(delay.total, ref_alerts.size());
  };

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    {
      telemetry::MetricsRegistry registry;
      ShardedDetectorOptions options;
      options.shards = shards;
      options.metrics = &registry;
      ShardedDetector inline_run(config, options);
      inline_run.submit_batch(stream);
      check(inline_run, registry);
    }
    for (const WaitPolicy policy : {WaitPolicy::kBusyPoll, WaitPolicy::kFutex}) {
      telemetry::MetricsRegistry registry;
      ShardedDetectorOptions options;
      options.shards = shards;
      options.threaded = true;
      options.wait_policy = policy;
      options.metrics = &registry;
      options.queue_capacity = 256;
      options.drain_batch = 32;
      ShardedDetector threaded(config, options);
      std::size_t i = 0;
      for (std::size_t chunk = 1; i < stream.size(); chunk = chunk % 97 + 13) {
        const std::size_t n = std::min(chunk, stream.size() - i);
        threaded.submit_batch({stream.data() + i, n});
        i += n;
      }
      threaded.flush();
      threaded.stop();
      check(threaded, registry);
      // The ring instrumentation saw real traffic in threaded mode.
      const auto publishes =
          registry.render_prometheus().find("artemis_ring_publishes_total 0\n");
      EXPECT_EQ(publishes, std::string::npos);
    }
  }
}

TEST(ShardedDetectorTest, ReloadUnderLoadMatrixIsDeterministic) {
  // Incremental reload mid-stream: swapping the ownership snapshot after
  // K observations must (a) reproduce, at every point of the acceptance
  // matrix, the N=1 inline reference that swaps at the same point, and
  // (b) from the swap on, behave bit-identically to a FRESH run against
  // the final config — no restart, no re-replay, no perturbation of
  // in-flight batches.
  const Config before = make_config();  // v1 single-operator (tenant 0)
  // Final config: dedicated tenants for both prefixes (ids 1 and 2 — a
  // fleet tenant occupies id 0 — so every post-swap alert key is
  // tenant-scoped away from the pre-swap records), plus a newly
  // onboarded prefix that was pure noise before the reload.
  Config after;
  after.add_tenant("fleet");
  const auto acme = after.add_tenant("acme");
  const auto globex = after.add_tenant("globex");
  {
    OwnedPrefix owned;
    owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
    owned.legitimate_origins.insert(65001);
    after.add_owned(acme, std::move(owned));
    OwnedPrefix second;
    second.prefix = net::Prefix::must_parse("192.0.2.0/24");
    second.legitimate_origins.insert(65002);
    after.add_owned(globex, std::move(second));
    OwnedPrefix onboarded;
    onboarded.prefix = net::Prefix::must_parse("203.0.113.0/24");
    onboarded.legitimate_origins.insert(65003);
    after.add_owned(acme, std::move(onboarded));
  }
  const auto after_table = after.build_table();

  const auto stream = scenario_stream(29, 3000);
  const std::size_t swap_at = stream.size() / 2;
  const std::span<const Observation> head{stream.data(), swap_at};
  const std::span<const Observation> tail{stream.data() + swap_at,
                                          stream.size() - swap_at};

  // Reference: the trivially correct single-shard inline reload.
  ShardedDetectorOptions ref_options;
  ref_options.shards = 1;
  ShardedDetector reference(before, ref_options);
  reference.submit_batch(head);
  reference.reload(after_table);
  reference.submit_batch(tail);
  const auto ref_alerts = reference.merged_alerts();
  ASSERT_GT(ref_alerts.size(), 0u);
  // The reload demonstrably took effect: the onboarded tenant alerts.
  ASSERT_TRUE(std::any_of(ref_alerts.begin(), ref_alerts.end(),
                          [](const HijackAlert& a) {
                            return a.tenant_name == "acme" &&
                                   a.observed_prefix ==
                                       net::Prefix::must_parse("203.0.113.0/24");
                          }));

  // (b): a fresh detector born on the final config, fed only the tail,
  // must produce exactly the reference's post-swap (tenant != 0) alerts.
  {
    ShardedDetector fresh(after_table, ref_options);
    fresh.submit_batch(tail);
    const auto fresh_alerts = fresh.merged_alerts();
    std::vector<HijackAlert> post_swap;
    for (const auto& alert : ref_alerts) {
      if (alert.tenant != core::kDefaultTenantId) post_swap.push_back(alert);
    }
    ASSERT_EQ(fresh_alerts.size(), post_swap.size());
    for (std::size_t i = 0; i < post_swap.size(); ++i) {
      expect_same_alert(fresh_alerts[i], post_swap[i]);
      EXPECT_EQ(fresh_alerts[i].tenant, post_swap[i].tenant);
      EXPECT_EQ(fresh_alerts[i].tenant_name, post_swap[i].tenant_name);
    }
  }

  // (a): the matrix. Reload fires at the same stream position in every
  // leg; threaded legs submit in uneven chunks so the swap lands with
  // staged partials and in-flight ring batches to drain.
  auto check = [&](ShardedDetector& other) {
    EXPECT_EQ(other.observations_processed(), reference.observations_processed());
    EXPECT_EQ(other.observations_matched(), reference.observations_matched());
    const auto other_alerts = other.merged_alerts();
    ASSERT_EQ(other_alerts.size(), ref_alerts.size());
    for (std::size_t i = 0; i < ref_alerts.size(); ++i) {
      expect_same_alert(other_alerts[i], ref_alerts[i]);
      EXPECT_EQ(other_alerts[i].tenant, ref_alerts[i].tenant);
      EXPECT_EQ(other_alerts[i].tenant_name, ref_alerts[i].tenant_name);
    }
  };

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    {
      ShardedDetectorOptions options;
      options.shards = shards;
      ShardedDetector inline_run(before, options);
      inline_run.submit_batch(head);
      inline_run.reload(after_table);
      EXPECT_EQ(inline_run.ownership().version(), after_table->version());
      inline_run.submit_batch(tail);
      check(inline_run);
    }
    for (const WaitPolicy policy : {WaitPolicy::kBusyPoll, WaitPolicy::kFutex}) {
      ShardedDetectorOptions options;
      options.shards = shards;
      options.threaded = true;
      options.wait_policy = policy;
      options.queue_capacity = 256;
      options.drain_batch = 32;
      ShardedDetector threaded(before, options);
      const auto feed = [&](std::span<const Observation> part) {
        std::size_t i = 0;
        for (std::size_t chunk = 1; i < part.size(); chunk = chunk % 97 + 13) {
          const std::size_t n = std::min(chunk, part.size() - i);
          threaded.submit_batch(part.subspan(i, n));
          i += n;
        }
      };
      feed(head);
      threaded.reload(after_table);  // drains in-flight, then swaps
      feed(tail);
      threaded.flush();
      check(threaded);
      threaded.stop();
      check(threaded);
    }
  }
}

TEST(ShardedDetectorTest, ReloadFromNonProducerThreadThrows) {
  const Config config = make_config();
  ShardedDetectorOptions options;
  options.shards = 2;
  options.threaded = true;
  ShardedDetector detector(config, options);
  detector.submit(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  const auto table = config.build_table();
  std::exception_ptr thrown;
  std::thread([&] {
    try {
      detector.reload(table);
    } catch (...) {
      thrown = std::current_exception();
    }
  }).join();
  EXPECT_TRUE(thrown != nullptr);
  detector.flush();
  detector.stop();
}

TEST(ShardedDetectorTest, FlushFromNonProducerThreadThrows) {
  // flush() waits for the workers by spinning on the producer's own
  // counters; calling it from a second thread would race the (single)
  // producer contract, so it must refuse loudly instead of corrupting.
  const Config config = make_config();
  ShardedDetectorOptions options;
  options.shards = 2;
  options.threaded = true;
  ShardedDetector detector(config, options);
  detector.submit(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  std::thread other([&] {
    EXPECT_THROW(detector.flush(), std::logic_error);
  });
  other.join();
  detector.flush();  // the producer thread itself is still allowed
  EXPECT_EQ(detector.observations_processed(), 1u);
}

// ------------------------------------------------------------- hub batching

TEST(MonitorHubBatchTest, BatchAndPerObservationSubscribersAgree) {
  feeds::MonitorHub hub;
  std::size_t batch_total = 0;
  std::size_t batch_calls = 0;
  std::size_t per_obs_total = 0;
  hub.subscribe_batch([&](std::span<const Observation> batch) {
    ++batch_calls;
    batch_total += batch.size();
  });
  hub.subscribe([&](const Observation&) { ++per_obs_total; });

  std::vector<Observation> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100 + i));
  }
  for (int i = 0; i < 3; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "bgpmon", 110 + i));
  }
  hub.publish_batch(batch);
  hub.batch_inlet()(batch);

  EXPECT_EQ(batch_calls, 2u);
  EXPECT_EQ(batch_total, 16u);
  EXPECT_EQ(per_obs_total, 16u);
  EXPECT_EQ(hub.total_observations(), 16u);
  // Mixed-source batch: the run-length accounting still splits correctly.
  EXPECT_EQ(hub.source_count("ris-live"), 10u);
  EXPECT_EQ(hub.source_count("bgpmon"), 6u);
  EXPECT_EQ(hub.source_count("never-seen"), 0u);
  EXPECT_EQ(hub.per_source_counts().at("ris-live"), 10u);
  EXPECT_EQ(hub.source_table_size(), 2u);
}

TEST(MonitorHubBatchTest, InternKeepsIdsStableAcrossInsertionOrder) {
  feeds::MonitorHub hub;
  // Interleave names that sort in the opposite order of first sight.
  for (const char* name : {"zebra", "alpha", "zebra", "mid", "alpha", "zebra"}) {
    Observation obs;
    obs.source = name;
    hub.publish(obs);
  }
  EXPECT_EQ(hub.source_count("zebra"), 3u);
  EXPECT_EQ(hub.source_count("alpha"), 2u);
  EXPECT_EQ(hub.source_count("mid"), 1u);
  const auto map = hub.per_source_counts();
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.begin()->first, "alpha");  // map-shaped accessor sorts
}

}  // namespace
}  // namespace artemis::pipeline

#include <gtest/gtest.h>

#include "netbase/prefix.hpp"

namespace artemis::net {
namespace {

TEST(PrefixTest, ParseAndFormat) {
  const auto p = Prefix::parse("10.0.0.0/23");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 23);
  EXPECT_EQ(p->to_string(), "10.0.0.0/23");
  EXPECT_TRUE(p->is_v4());
}

TEST(PrefixTest, ConstructionCanonicalizesHostBits) {
  const Prefix p(IpAddress::parse("10.0.1.77").value(), 23);
  EXPECT_EQ(p.to_string(), "10.0.0.0/23");
  const auto parsed = Prefix::parse("192.168.1.1/24");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->to_string(), "192.168.1.0/24");
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));       // no slash
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));    // too long for v4
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/x"));
  EXPECT_FALSE(Prefix::parse("300.0.0.0/8"));
  EXPECT_FALSE(Prefix::parse("::/129"));
  EXPECT_FALSE(Prefix::parse(""));
}

TEST(PrefixTest, MustParseThrowsOnBadInput) {
  EXPECT_THROW(Prefix::must_parse("nope"), std::invalid_argument);
  EXPECT_NO_THROW(Prefix::must_parse("0.0.0.0/0"));
}

TEST(PrefixTest, OutOfRangeLengthThrows) {
  EXPECT_THROW(Prefix(IpAddress::v4(0), 33), std::out_of_range);
  EXPECT_THROW(Prefix(IpAddress::v4(0), -1), std::out_of_range);
  EXPECT_NO_THROW(Prefix(IpAddress::v6(0, 0), 128));
}

TEST(PrefixTest, ContainsAddress) {
  const auto p = Prefix::must_parse("10.0.0.0/23");
  EXPECT_TRUE(p.contains(IpAddress::parse("10.0.0.0").value()));
  EXPECT_TRUE(p.contains(IpAddress::parse("10.0.1.255").value()));
  EXPECT_FALSE(p.contains(IpAddress::parse("10.0.2.0").value()));
  EXPECT_FALSE(p.contains(IpAddress::parse("9.255.255.255").value()));
  EXPECT_FALSE(p.contains(IpAddress::v6(0, 0)));  // family mismatch
}

TEST(PrefixTest, CoversIsReflexiveAndDirectional) {
  const auto p23 = Prefix::must_parse("10.0.0.0/23");
  const auto p24 = Prefix::must_parse("10.0.1.0/24");
  EXPECT_TRUE(p23.covers(p23));
  EXPECT_TRUE(p23.covers(p24));
  EXPECT_FALSE(p24.covers(p23));
  EXPECT_FALSE(p23.covers(Prefix::must_parse("10.0.2.0/24")));
}

TEST(PrefixTest, OverlapsEitherDirection) {
  const auto p23 = Prefix::must_parse("10.0.0.0/23");
  const auto p24 = Prefix::must_parse("10.0.1.0/24");
  const auto other = Prefix::must_parse("10.1.0.0/16");
  EXPECT_TRUE(p23.overlaps(p24));
  EXPECT_TRUE(p24.overlaps(p23));
  EXPECT_FALSE(p23.overlaps(other));
  EXPECT_TRUE(Prefix::must_parse("0.0.0.0/0").overlaps(p23));
}

TEST(PrefixTest, SplitProducesHalves) {
  const auto p = Prefix::must_parse("10.0.0.0/23");
  const auto [low, high] = p.split();
  EXPECT_EQ(low.to_string(), "10.0.0.0/24");
  EXPECT_EQ(high.to_string(), "10.0.1.0/24");
  EXPECT_TRUE(p.covers(low));
  EXPECT_TRUE(p.covers(high));
  EXPECT_FALSE(low.overlaps(high));
}

TEST(PrefixTest, SplitHostPrefixThrows) {
  EXPECT_THROW(Prefix::must_parse("10.0.0.1/32").split(), std::logic_error);
}

TEST(PrefixTest, DeaggregateToTarget) {
  const auto p = Prefix::must_parse("10.0.0.0/22");
  const auto subs = p.deaggregate(24);
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0].to_string(), "10.0.0.0/24");
  EXPECT_EQ(subs[1].to_string(), "10.0.1.0/24");
  EXPECT_EQ(subs[2].to_string(), "10.0.2.0/24");
  EXPECT_EQ(subs[3].to_string(), "10.0.3.0/24");
}

TEST(PrefixTest, DeaggregateIdentity) {
  const auto p = Prefix::must_parse("10.0.0.0/24");
  const auto subs = p.deaggregate(24);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], p);
}

TEST(PrefixTest, DeaggregateGuards) {
  const auto p = Prefix::must_parse("10.0.0.0/8");
  EXPECT_THROW(p.deaggregate(7), std::out_of_range);    // coarser than self
  EXPECT_THROW(p.deaggregate(33), std::out_of_range);   // beyond family
  EXPECT_THROW(p.deaggregate(24), std::out_of_range);   // fan-out 2^16
}

TEST(PrefixTest, ParentInverseOfSplit) {
  const auto p = Prefix::must_parse("10.0.0.0/23");
  const auto [low, high] = p.split();
  EXPECT_EQ(low.parent(), p);
  EXPECT_EQ(high.parent(), p);
  EXPECT_THROW(Prefix::must_parse("0.0.0.0/0").parent(), std::logic_error);
}

TEST(PrefixTest, SizeV4) {
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/24").size_v4(), 256u);
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/23").size_v4(), 512u);
  EXPECT_EQ(Prefix::must_parse("0.0.0.0/0").size_v4(), 1ULL << 32);
  EXPECT_EQ(Prefix::must_parse("1.2.3.4/32").size_v4(), 1u);
  EXPECT_THROW(Prefix::must_parse("::/64").size_v4(), std::logic_error);
}

TEST(PrefixTest, Ipv6PrefixOperations) {
  const auto p = Prefix::must_parse("2001:db8::/32");
  EXPECT_EQ(p.max_length(), 128);
  EXPECT_TRUE(p.contains(IpAddress::parse("2001:db8::1").value()));
  EXPECT_FALSE(p.contains(IpAddress::parse("2001:db9::1").value()));
  const auto [low, high] = p.split();
  EXPECT_EQ(low.to_string(), "2001:db8::/33");
  EXPECT_EQ(high.to_string(), "2001:db8:8000::/33");
}

TEST(PrefixTest, FamiliesDoNotMix) {
  const auto v4 = Prefix::must_parse("0.0.0.0/0");
  const auto v6 = Prefix::must_parse("::/0");
  EXPECT_FALSE(v4.covers(v6));
  EXPECT_FALSE(v6.covers(v4));
  EXPECT_FALSE(v4.overlaps(v6));
  EXPECT_NE(v4, v6);
}

TEST(PrefixTest, HashDistinguishesLengthAndAddress) {
  const std::hash<Prefix> h;
  EXPECT_NE(h(Prefix::must_parse("10.0.0.0/23")), h(Prefix::must_parse("10.0.0.0/24")));
  EXPECT_NE(h(Prefix::must_parse("10.0.0.0/24")), h(Prefix::must_parse("10.0.1.0/24")));
  EXPECT_EQ(h(Prefix::must_parse("10.0.0.0/24")),
            h(Prefix(IpAddress::parse("10.0.0.200").value(), 24)));
}

TEST(PrefixTest, OrderingIsDeterministic) {
  const auto a = Prefix::must_parse("10.0.0.0/23");
  const auto b = Prefix::must_parse("10.0.0.0/24");
  const auto c = Prefix::must_parse("10.0.1.0/24");
  EXPECT_LT(a, b);  // same address, shorter first
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace artemis::net

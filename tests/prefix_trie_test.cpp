#include <gtest/gtest.h>

#include <map>
#include <string>

#include "netbase/prefix_trie.hpp"

namespace artemis::net {
namespace {

Prefix P(std::string_view s) { return Prefix::must_parse(s); }
IpAddress A(std::string_view s) { return IpAddress::parse(s).value(); }

TEST(PrefixTrieTest, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(P("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(P("10.0.0.0/8"), 2));  // overwrite, not new
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(P("10.0.0.0/9")), nullptr);
  EXPECT_TRUE(trie.erase(P("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(P("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrieTest, RootPrefixStorable) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 7);
  const auto hit = trie.lookup(A("203.0.113.9"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("0.0.0.0/0"));
  EXPECT_EQ(*hit->second, 7);
}

TEST(PrefixTrieTest, LongestPrefixMatchPrefersSpecific) {
  PrefixTrie<std::string> trie;
  trie.insert(P("10.0.0.0/8"), "eight");
  trie.insert(P("10.0.0.0/23"), "twentythree");
  trie.insert(P("10.0.1.0/24"), "twentyfour");

  EXPECT_EQ(*trie.lookup(A("10.0.1.50"))->second, "twentyfour");
  EXPECT_EQ(*trie.lookup(A("10.0.0.50"))->second, "twentythree");
  EXPECT_EQ(*trie.lookup(A("10.99.0.1"))->second, "eight");
  EXPECT_FALSE(trie.lookup(A("11.0.0.1")).has_value());
}

TEST(PrefixTrieTest, LookupReturnsMatchedPrefix) {
  PrefixTrie<int> trie;
  trie.insert(P("192.168.0.0/16"), 1);
  const auto hit = trie.lookup(A("192.168.42.1"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("192.168.0.0/16"));
}

TEST(PrefixTrieTest, LookupSkipsErasedMiddle) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/16"), 16);
  trie.insert(P("10.0.0.0/24"), 24);
  trie.erase(P("10.0.0.0/16"));
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 24);
  EXPECT_EQ(*trie.lookup(A("10.0.1.1"))->second, 8);  // /16 gone, falls to /8
}

TEST(PrefixTrieTest, LookupCoveringFindsMostSpecificAncestor) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/23"), 23);
  const auto hit = trie.lookup_covering(P("10.0.0.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("10.0.0.0/23"));
  // Exact match counts as covering.
  EXPECT_EQ(trie.lookup_covering(P("10.0.0.0/23"))->first, P("10.0.0.0/23"));
  EXPECT_FALSE(trie.lookup_covering(P("11.0.0.0/24")).has_value());
}

TEST(PrefixTrieTest, VisitCoveredEnumeratesSubtree) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/23"), 1);
  trie.insert(P("10.0.0.0/24"), 2);
  trie.insert(P("10.0.1.0/24"), 3);
  trie.insert(P("10.0.2.0/24"), 4);  // outside /23
  trie.insert(P("10.0.0.0/8"), 5);   // above /23

  std::map<std::string, int> seen;
  trie.visit_covered(P("10.0.0.0/23"),
                     [&](const Prefix& p, const int& v) { seen[p.to_string()] = v; });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.at("10.0.0.0/23"), 1);
  EXPECT_EQ(seen.at("10.0.0.0/24"), 2);
  EXPECT_EQ(seen.at("10.0.1.0/24"), 3);
}

TEST(PrefixTrieTest, VisitCoveringWalksAncestors) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/16"), 16);
  trie.insert(P("10.0.0.0/24"), 24);
  trie.insert(P("10.0.0.0/28"), 28);  // more specific: not covering /24
  trie.insert(P("10.1.0.0/16"), 99);  // sibling: not covering

  std::vector<int> seen;
  trie.visit_covering(P("10.0.0.0/24"),
                      [&](const Prefix&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16, 24}));  // root-to-leaf order
}

TEST(PrefixTrieTest, VisitCoveringNoAncestors) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/24"), 1);
  int count = 0;
  trie.visit_covering(P("11.0.0.0/24"), [&](const Prefix&, const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(PrefixTrieTest, VisitAllBothFamilies) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("2001:db8::/32"), 2);
  int count = 0;
  trie.visit_all([&](const Prefix&, const int&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(PrefixTrieTest, FamiliesAreIsolated) {
  PrefixTrie<int> trie;
  trie.insert(P("::/0"), 6);
  EXPECT_FALSE(trie.lookup(A("1.2.3.4")).has_value());
  trie.insert(P("0.0.0.0/0"), 4);
  EXPECT_EQ(*trie.lookup(A("1.2.3.4"))->second, 4);
  EXPECT_EQ(*trie.lookup(A("2001:db8::1"))->second, 6);
}

TEST(PrefixTrieTest, HostRoutesWork) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.1/32"), 1);
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 1);
  EXPECT_FALSE(trie.lookup(A("10.0.0.2")).has_value());
}

TEST(PrefixTrieTest, ClearResets) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("2001:db8::/32"), 2);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.lookup(A("10.1.2.3")).has_value());
}

TEST(PrefixTrieTest, EraseOnlyRemovesExact) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/16"), 16);
  EXPECT_FALSE(trie.erase(P("10.0.0.0/12")));  // never inserted
  EXPECT_TRUE(trie.erase(P("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 16);
}

TEST(PrefixTrieTest, ReinsertAfterErase) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/24"), 1);
  trie.erase(P("10.0.0.0/24"));
  EXPECT_TRUE(trie.insert(P("10.0.0.0/24"), 2));
  EXPECT_EQ(*trie.find(P("10.0.0.0/24")), 2);
}

TEST(PrefixTrieTest, MoveOnlyValues) {
  PrefixTrie<std::unique_ptr<int>> trie;
  trie.insert(P("10.0.0.0/8"), std::make_unique<int>(42));
  ASSERT_NE(trie.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(**trie.find(P("10.0.0.0/8")), 42);
}

TEST(PrefixTrieTest, VisitCoveredOnMissingSubtreeIsNoop) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  int count = 0;
  trie.visit_covered(P("11.0.0.0/8"), [&](const Prefix&, const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

// ------------------------------------------------- IPv6 stride cascade

TEST(PrefixTrieV6CascadeTest, CascadeMatchesPathOnlyAcrossActivation) {
  // Grow a v6 trie through the first activation threshold (1024 nodes)
  // with a tables-disabled twin as the oracle; lookups, finds and
  // covering queries must agree at every checkpoint straddling the
  // boundary.
  PrefixTrie<int> cascade;
  PrefixTrie<int> path_only;
  path_only.set_stride_tables_enabled(false);

  std::uint64_t state = 1;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  static constexpr std::uint64_t kBlocks[] = {0x2001, 0x2400, 0x2600, 0x2a00};
  std::vector<Prefix> inserted;
  std::vector<IpAddress> probes;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t hi = (kBlocks[next() & 3] << 48) | (next() & 0xFFFFFFFFFFFFull);
    probes.push_back(IpAddress::from_words(IpFamily::kIpv6, hi, next()));
  }
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t hi = (kBlocks[next() & 3] << 48) | (next() & 0xFFFFFFFFFFFFull);
    const int len = 32 + static_cast<int>(next() % 17);
    const Prefix p(IpAddress::from_words(IpFamily::kIpv6, hi, next()), len);
    cascade.insert(p, i);
    path_only.insert(p, i);
    inserted.push_back(p);
    // Checkpoints bracketing the 1024-node activation boundary, plus the
    // end state.
    if (i % 250 == 0 || i == 1499) {
      for (const auto& probe : probes) {
        const auto a = cascade.lookup(probe);
        const auto b = path_only.lookup(probe);
        ASSERT_EQ(a.has_value(), b.has_value()) << "i=" << i;
        if (a) {
          EXPECT_EQ(a->first, b->first) << "i=" << i;
          EXPECT_EQ(*a->second, *b->second) << "i=" << i;
        }
      }
    }
  }
  EXPECT_EQ(cascade.size(), path_only.size());
  // Exact finds and erases stay consistent with tables active.
  for (std::size_t i = 0; i < inserted.size(); i += 7) {
    const int* a = cascade.find(inserted[i]);
    const int* b = path_only.find(inserted[i]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(cascade.erase(inserted[i]), path_only.erase(inserted[i]));
  }
  for (const auto& probe : probes) {
    const auto a = cascade.lookup(probe);
    const auto b = path_only.lookup(probe);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) EXPECT_EQ(a->first, b->first);
  }
}

TEST(PrefixTrieV6CascadeTest, DefaultRouteAndHostRouteWithTablesActive) {
  PrefixTrie<int> trie;
  // Activate the v6 cascade with filler /48s.
  std::uint64_t state = 7;
  for (int i = 0; i < 1200; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    trie.insert(Prefix(IpAddress::from_words(IpFamily::kIpv6,
                                             (0x2001ull << 48) | (state >> 16), 0),
                       48),
                i);
  }
  // /0 inserted AFTER activation: its table range is every slot.
  trie.insert(P("::/0"), -1);
  // /128 host route.
  trie.insert(P("2001:db8::1/128"), 1281);

  // An address in no filler block falls back to the default route.
  const auto miss = trie.lookup(A("fd00::1"));
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->first, P("::/0"));
  EXPECT_EQ(*miss->second, -1);

  // The /128 wins over the /0 for its exact address.
  const auto host = trie.lookup(A("2001:db8::1"));
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->first, P("2001:db8::1/128"));
  EXPECT_EQ(*host->second, 1281);

  // Erasing the /0 with tables active restores misses.
  EXPECT_TRUE(trie.erase(P("::/0")));
  EXPECT_FALSE(trie.lookup(A("fd00::1")).has_value());
}

TEST(PrefixTrieV6CascadeTest, MixedFamilyTrieKeepsFamiliesIsolated) {
  PrefixTrie<int> trie;
  std::uint64_t state = 3;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  // Push BOTH families past their activation thresholds in one trie.
  for (int i = 0; i < 1500; ++i) {
    trie.insert(Prefix(IpAddress::v4(static_cast<std::uint32_t>(next())),
                       8 + static_cast<int>(next() % 17)),
                i);
    trie.insert(Prefix(IpAddress::from_words(IpFamily::kIpv6,
                                             (0x2600ull << 48) | (next() >> 16),
                                             next()),
                       32 + static_cast<int>(next() % 17)),
                i);
  }
  trie.insert(P("10.0.0.0/8"), 4001);
  trie.insert(P("2001:db8::/32"), 6001);
  // Same-numeric-bits keys in the other family must not collide.
  const auto v4 = trie.lookup(A("10.1.2.3"));
  ASSERT_TRUE(v4.has_value());
  EXPECT_TRUE(v4->first.is_v4());
  const auto v6 = trie.lookup(A("2001:db8::42"));
  ASSERT_TRUE(v6.has_value());
  EXPECT_FALSE(v6->first.is_v4());
  EXPECT_EQ(*v6->second, 6001);
  // visit_all sees both families once each.
  std::size_t visited = 0;
  trie.visit_all([&](const Prefix&, const int&) { ++visited; });
  EXPECT_EQ(visited, trie.size());
}

}  // namespace
}  // namespace artemis::net

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "netbase/prefix_trie.hpp"

namespace artemis::net {
namespace {

Prefix P(std::string_view s) { return Prefix::must_parse(s); }
IpAddress A(std::string_view s) { return IpAddress::parse(s).value(); }

TEST(PrefixTrieTest, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(P("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(P("10.0.0.0/8"), 2));  // overwrite, not new
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(P("10.0.0.0/9")), nullptr);
  EXPECT_TRUE(trie.erase(P("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(P("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrieTest, RootPrefixStorable) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 7);
  const auto hit = trie.lookup(A("203.0.113.9"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("0.0.0.0/0"));
  EXPECT_EQ(*hit->second, 7);
}

TEST(PrefixTrieTest, LongestPrefixMatchPrefersSpecific) {
  PrefixTrie<std::string> trie;
  trie.insert(P("10.0.0.0/8"), "eight");
  trie.insert(P("10.0.0.0/23"), "twentythree");
  trie.insert(P("10.0.1.0/24"), "twentyfour");

  EXPECT_EQ(*trie.lookup(A("10.0.1.50"))->second, "twentyfour");
  EXPECT_EQ(*trie.lookup(A("10.0.0.50"))->second, "twentythree");
  EXPECT_EQ(*trie.lookup(A("10.99.0.1"))->second, "eight");
  EXPECT_FALSE(trie.lookup(A("11.0.0.1")).has_value());
}

TEST(PrefixTrieTest, LookupReturnsMatchedPrefix) {
  PrefixTrie<int> trie;
  trie.insert(P("192.168.0.0/16"), 1);
  const auto hit = trie.lookup(A("192.168.42.1"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("192.168.0.0/16"));
}

TEST(PrefixTrieTest, LookupSkipsErasedMiddle) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/16"), 16);
  trie.insert(P("10.0.0.0/24"), 24);
  trie.erase(P("10.0.0.0/16"));
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 24);
  EXPECT_EQ(*trie.lookup(A("10.0.1.1"))->second, 8);  // /16 gone, falls to /8
}

TEST(PrefixTrieTest, LookupCoveringFindsMostSpecificAncestor) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/23"), 23);
  const auto hit = trie.lookup_covering(P("10.0.0.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("10.0.0.0/23"));
  // Exact match counts as covering.
  EXPECT_EQ(trie.lookup_covering(P("10.0.0.0/23"))->first, P("10.0.0.0/23"));
  EXPECT_FALSE(trie.lookup_covering(P("11.0.0.0/24")).has_value());
}

TEST(PrefixTrieTest, VisitCoveredEnumeratesSubtree) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/23"), 1);
  trie.insert(P("10.0.0.0/24"), 2);
  trie.insert(P("10.0.1.0/24"), 3);
  trie.insert(P("10.0.2.0/24"), 4);  // outside /23
  trie.insert(P("10.0.0.0/8"), 5);   // above /23

  std::map<std::string, int> seen;
  trie.visit_covered(P("10.0.0.0/23"),
                     [&](const Prefix& p, const int& v) { seen[p.to_string()] = v; });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.at("10.0.0.0/23"), 1);
  EXPECT_EQ(seen.at("10.0.0.0/24"), 2);
  EXPECT_EQ(seen.at("10.0.1.0/24"), 3);
}

TEST(PrefixTrieTest, VisitCoveringWalksAncestors) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/16"), 16);
  trie.insert(P("10.0.0.0/24"), 24);
  trie.insert(P("10.0.0.0/28"), 28);  // more specific: not covering /24
  trie.insert(P("10.1.0.0/16"), 99);  // sibling: not covering

  std::vector<int> seen;
  trie.visit_covering(P("10.0.0.0/24"),
                      [&](const Prefix&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16, 24}));  // root-to-leaf order
}

TEST(PrefixTrieTest, VisitCoveringNoAncestors) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/24"), 1);
  int count = 0;
  trie.visit_covering(P("11.0.0.0/24"), [&](const Prefix&, const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(PrefixTrieTest, VisitAllBothFamilies) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("2001:db8::/32"), 2);
  int count = 0;
  trie.visit_all([&](const Prefix&, const int&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(PrefixTrieTest, FamiliesAreIsolated) {
  PrefixTrie<int> trie;
  trie.insert(P("::/0"), 6);
  EXPECT_FALSE(trie.lookup(A("1.2.3.4")).has_value());
  trie.insert(P("0.0.0.0/0"), 4);
  EXPECT_EQ(*trie.lookup(A("1.2.3.4"))->second, 4);
  EXPECT_EQ(*trie.lookup(A("2001:db8::1"))->second, 6);
}

TEST(PrefixTrieTest, HostRoutesWork) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.1/32"), 1);
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 1);
  EXPECT_FALSE(trie.lookup(A("10.0.0.2")).has_value());
}

TEST(PrefixTrieTest, ClearResets) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("2001:db8::/32"), 2);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.lookup(A("10.1.2.3")).has_value());
}

TEST(PrefixTrieTest, EraseOnlyRemovesExact) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/16"), 16);
  EXPECT_FALSE(trie.erase(P("10.0.0.0/12")));  // never inserted
  EXPECT_TRUE(trie.erase(P("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 16);
}

TEST(PrefixTrieTest, ReinsertAfterErase) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/24"), 1);
  trie.erase(P("10.0.0.0/24"));
  EXPECT_TRUE(trie.insert(P("10.0.0.0/24"), 2));
  EXPECT_EQ(*trie.find(P("10.0.0.0/24")), 2);
}

TEST(PrefixTrieTest, MoveOnlyValues) {
  PrefixTrie<std::unique_ptr<int>> trie;
  trie.insert(P("10.0.0.0/8"), std::make_unique<int>(42));
  ASSERT_NE(trie.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(**trie.find(P("10.0.0.0/8")), 42);
}

TEST(PrefixTrieTest, VisitCoveredOnMissingSubtreeIsNoop) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  int count = 0;
  trie.visit_covered(P("11.0.0.0/8"), [&](const Prefix&, const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace artemis::net

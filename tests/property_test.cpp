// Property-based tests: randomized sweeps over seeds asserting the
// library's structural invariants (parameterized gtest, one seed per
// instantiation).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "artemis/mitigation.hpp"
#include "bgp/rib.hpp"
#include "mrt/mrt.hpp"
#include "mrt/stream_reader.hpp"
#include "netbase/prefix_trie.hpp"
#include "sim/network.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace artemis {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
};

// ------------------------------------------ prefix parse/format round-trip

net::Prefix random_prefix(Rng& rng, int min_len = 0, int max_len = 32) {
  const auto addr = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64()));
  const int len = static_cast<int>(rng.uniform_int(min_len, max_len));
  return net::Prefix(addr, len);
}

using PrefixRoundTrip = SeededProperty;

TEST_P(PrefixRoundTrip, ParseFormatIsIdentity) {
  for (int i = 0; i < 500; ++i) {
    const auto p = random_prefix(rng);
    const auto reparsed = net::Prefix::parse(p.to_string());
    ASSERT_TRUE(reparsed) << p.to_string();
    EXPECT_EQ(*reparsed, p);
  }
}

TEST_P(PrefixRoundTrip, SplitHalvesPartitionParent) {
  for (int i = 0; i < 500; ++i) {
    const auto p = random_prefix(rng, 0, 31);
    const auto [low, high] = p.split();
    EXPECT_EQ(low.parent(), p);
    EXPECT_EQ(high.parent(), p);
    EXPECT_FALSE(low.overlaps(high));
    EXPECT_EQ(low.size_v4() + high.size_v4(), p.size_v4());
    // Any address in p lands in exactly one half.
    const auto probe =
        net::IpAddress::v4(p.address().v4_value() +
                           static_cast<std::uint32_t>(rng.uniform_u64(p.size_v4())));
    EXPECT_NE(low.contains(probe), high.contains(probe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------- trie vs naive linear LPM

using TrieVsNaive = SeededProperty;

TEST_P(TrieVsNaive, LookupMatchesLinearScan) {
  net::PrefixTrie<int> trie;
  std::vector<std::pair<net::Prefix, int>> table;
  for (int i = 0; i < 300; ++i) {
    const auto p = random_prefix(rng, 4, 28);
    if (trie.find(p) == nullptr) {  // skip duplicates: keep models in sync
      trie.insert(p, i);
      table.emplace_back(p, i);
    }
  }
  // Random erasures keep the two structures in sync.
  for (int i = 0; i < 50 && !table.empty(); ++i) {
    const auto idx = rng.uniform_u64(table.size());
    trie.erase(table[idx].first);
    table.erase(table.begin() + static_cast<long>(idx));
  }
  for (int i = 0; i < 2000; ++i) {
    const auto addr = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64()));
    const auto got = trie.lookup(addr);
    // Naive longest-prefix match.
    const std::pair<net::Prefix, int>* best = nullptr;
    for (const auto& entry : table) {
      if (!entry.first.contains(addr)) continue;
      if (best == nullptr || entry.first.length() > best->first.length()) best = &entry;
    }
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->first, best->first);
      EXPECT_EQ(*got->second, best->second);
    }
  }
}

TEST_P(TrieVsNaive, VisitCoveredMatchesFilter) {
  net::PrefixTrie<int> trie;
  std::vector<net::Prefix> inserted;
  for (int i = 0; i < 200; ++i) {
    const auto p = random_prefix(rng, 8, 28);
    if (trie.insert(p, i)) inserted.push_back(p);
  }
  for (int i = 0; i < 50; ++i) {
    const auto scope = random_prefix(rng, 4, 20);
    std::vector<net::Prefix> via_trie;
    trie.visit_covered(scope,
                       [&](const net::Prefix& p, const int&) { via_trie.push_back(p); });
    std::vector<net::Prefix> via_filter;
    for (const auto& p : inserted) {
      if (scope.covers(p)) via_filter.push_back(p);
    }
    std::sort(via_trie.begin(), via_trie.end());
    std::sort(via_filter.begin(), via_filter.end());
    EXPECT_EQ(via_trie, via_filter);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsNaive, ::testing::Values(10, 11, 12, 13, 14));

// ------------------------------------------------- MRT round-trip fuzzing

using MrtRoundTrip = SeededProperty;

bgp::UpdateMessage random_update(Rng& rng) {
  bgp::UpdateMessage u;
  u.sender = static_cast<bgp::Asn>(rng.uniform_int(1, 1 << 20));
  const auto n_announced = rng.uniform_int(0, 5);
  const auto n_withdrawn = rng.uniform_int(n_announced == 0 ? 1 : 0, 4);
  for (int i = 0; i < n_announced; ++i) u.announced.push_back(random_prefix(rng));
  for (int i = 0; i < n_withdrawn; ++i) u.withdrawn.push_back(random_prefix(rng));
  if (!u.announced.empty()) {
    std::vector<bgp::Asn> hops;
    const auto n_hops = rng.uniform_int(1, 12);
    for (int i = 0; i < n_hops; ++i) {
      hops.push_back(static_cast<bgp::Asn>(rng.uniform_int(1, 1 << 30)));
    }
    u.attrs.as_path = bgp::AsPath(std::move(hops));
    u.attrs.origin = static_cast<bgp::Origin>(rng.uniform_int(0, 2));
    u.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    u.attrs.med = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    const auto n_comm = rng.uniform_int(0, 4);
    for (int i = 0; i < n_comm; ++i) {
      u.attrs.communities.push_back(
          {static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
           static_cast<std::uint16_t>(rng.uniform_int(0, 65535))});
    }
  }
  return u;
}

TEST_P(MrtRoundTrip, UpdateRecordSurvivesEncodeDecode) {
  for (int i = 0; i < 200; ++i) {
    mrt::UpdateRecord rec;
    rec.peer_asn = static_cast<bgp::Asn>(rng.uniform_int(1, 1 << 30));
    rec.local_asn = static_cast<bgp::Asn>(rng.uniform_int(1, 1 << 16));
    rec.peer_ip = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64()));
    rec.timestamp = SimTime::at_micros(rng.uniform_int(0, 4'000'000'000LL) * 1000);
    rec.update = random_update(rng);
    rec.update.sender = rec.peer_asn;

    const auto bytes = mrt::encode_update_record(rec);
    mrt::ByteReader reader(bytes);
    const auto raw = mrt::read_raw_record(reader);
    ASSERT_TRUE(raw);
    const auto decoded = mrt::decode_update_record(*raw);
    EXPECT_EQ(decoded.peer_asn, rec.peer_asn);
    EXPECT_EQ(decoded.timestamp, rec.timestamp);
    EXPECT_EQ(decoded.update.announced, rec.update.announced);
    EXPECT_EQ(decoded.update.withdrawn, rec.update.withdrawn);
    if (!rec.update.announced.empty()) {
      EXPECT_EQ(decoded.update.attrs.as_path, rec.update.attrs.as_path);
      EXPECT_EQ(decoded.update.attrs.communities, rec.update.attrs.communities);
    }
  }
}

TEST_P(MrtRoundTrip, ElemStreamConservesElemCount) {
  mrt::ByteWriter stream;
  std::size_t expected = 0;
  for (int i = 0; i < 50; ++i) {
    mrt::UpdateRecord rec;
    rec.peer_asn = 1 + static_cast<bgp::Asn>(i);
    rec.update = random_update(rng);
    expected += rec.update.announced.size() + rec.update.withdrawn.size();
    stream.bytes(mrt::encode_update_record(rec));
  }
  EXPECT_EQ(mrt::read_elems(stream.data()).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtRoundTrip, ::testing::Values(20, 21, 22, 23, 24));

// --------------------------------------- decision process is a strict order

using DecisionOrder = SeededProperty;

bgp::Route random_route(Rng& rng, const net::Prefix& prefix) {
  bgp::Route r;
  r.prefix = prefix;
  std::vector<bgp::Asn> hops;
  const auto n = rng.uniform_int(1, 6);
  for (int i = 0; i < n; ++i) {
    hops.push_back(static_cast<bgp::Asn>(rng.uniform_int(1, 50)));
  }
  r.attrs.as_path = bgp::AsPath(std::move(hops));
  r.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(1, 3) * 100);
  r.attrs.origin = static_cast<bgp::Origin>(rng.uniform_int(0, 2));
  r.attrs.med = static_cast<std::uint32_t>(rng.uniform_int(0, 3));
  r.learned_from = static_cast<bgp::Asn>(rng.uniform_int(1, 30));
  return r;
}

TEST_P(DecisionOrder, AntisymmetricAndTransitive) {
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  std::vector<bgp::Route> routes;
  for (int i = 0; i < 30; ++i) routes.push_back(random_route(rng, prefix));
  for (const auto& a : routes) {
    EXPECT_FALSE(bgp::better_route(a, a));
    for (const auto& b : routes) {
      EXPECT_FALSE(bgp::better_route(a, b) && bgp::better_route(b, a));
      for (const auto& c : routes) {
        if (bgp::better_route(a, b) && bgp::better_route(b, c)) {
          EXPECT_TRUE(bgp::better_route(a, c));
        }
      }
    }
  }
}

TEST_P(DecisionOrder, LocRibBestIsMaximalCandidate) {
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  bgp::LocRib rib;
  for (int i = 0; i < 20; ++i) {
    auto r = random_route(rng, prefix);
    r.learned_from = static_cast<bgp::Asn>(i + 1);  // distinct neighbors
    rib.announce(r);
  }
  const auto* best = rib.best(prefix);
  ASSERT_NE(best, nullptr);
  for (const auto& candidate : rib.candidates(prefix)) {
    EXPECT_FALSE(bgp::better_route(candidate, *best));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionOrder, ::testing::Values(30, 31, 32));

// --------------------------------------------- valley-free path invariant

using ValleyFree = SeededProperty;

TEST_P(ValleyFree, ConvergedPathsAreValleyFree) {
  topo::GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 20;
  params.stub_count = 60;
  auto topo_rng = rng.fork("topo");
  const auto graph = topo::generate_topology(params, topo_rng);

  sim::NetworkParams net_params;
  net_params.mrai = SimDuration::zero();  // converge fast; policy unchanged
  sim::Network network(graph, net_params, rng.fork("net"));

  const auto stubs = graph.ases_in_tier(topo::Tier::kStub);
  const auto origin_as = stubs[rng.uniform_u64(stubs.size())];
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  network.speaker(origin_as).originate(prefix);
  network.run_to_convergence();

  // Walk every AS's best path origin->AS and assert the up*-peer?-down*
  // pattern of Gao-Rexford.
  std::size_t with_route = 0;
  for (const auto asn : graph.all_ases()) {
    const auto* route = network.speaker(asn).best_route(prefix);
    if (route == nullptr) continue;
    ++with_route;
    if (asn == origin_as) continue;  // self-originated: no inter-AS hops
    // Full AS-level path, most recent first, then reversed to origin-first.
    std::vector<bgp::Asn> path{asn};
    for (const auto hop : route->attrs.as_path.hops()) path.push_back(hop);
    std::reverse(path.begin(), path.end());
    ASSERT_EQ(path.front(), origin_as);
    int phase = 0;  // 0 = climbing, 1 = after peer, 2 = descending
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto rel = graph.relationship(path[i], path[i + 1]);
      ASSERT_TRUE(rel.has_value()) << "non-adjacent hop in path";
      switch (*rel) {
        case topo::Relationship::kProvider:  // climbing up
          EXPECT_EQ(phase, 0) << "uphill after peak";
          break;
        case topo::Relationship::kPeer:
          EXPECT_EQ(phase, 0) << "second peak";
          phase = 1;
          break;
        case topo::Relationship::kCustomer:  // descending
          phase = 2;
          break;
      }
    }
  }
  // Policy may legitimately hide the route from some ASes, but the vast
  // majority must reach it (everyone has a provider chain to tier-1).
  EXPECT_GT(with_route, graph.as_count() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFree, ::testing::Values(40, 41, 42, 43));

// ------------------------------------------------ mitigation plan algebra

using PlanProperty = SeededProperty;

TEST_P(PlanProperty, AnnouncementsStayInOwnedSpaceAndBeatHijack) {
  for (int i = 0; i < 300; ++i) {
    const auto owned = random_prefix(rng, 8, 26);
    // Observed overlaps owned: either equal, sub, or super prefix.
    net::Prefix observed = owned;
    const auto kind = rng.uniform_int(0, 2);
    if (kind == 1 && owned.length() < 30) {
      observed = net::Prefix(
          owned.address().with_bit(owned.length(), rng.chance(0.5)), owned.length() + 1);
    } else if (kind == 2 && owned.length() > 1) {
      observed = net::Prefix(owned.address(), owned.length() - 1);
    }
    core::MitigationPolicy policy;
    policy.deaggregation_floor = static_cast<int>(rng.uniform_int(20, 28));
    policy.reannounce_exact = rng.chance(0.5);
    const auto plan = core::plan_mitigation(owned, observed, policy);

    const auto scope = owned.covers(observed) ? observed : owned;
    for (const auto& announcement : plan.announcements) {
      // Never announce space we do not own.
      EXPECT_TRUE(owned.covers(announcement)) << owned.to_string() << " vs "
                                              << announcement.to_string();
      // Never exceed the filtering floor (except the exact re-announce,
      // which is by definition the owned prefix itself).
      if (announcement != owned) {
        EXPECT_LE(announcement.length(), policy.deaggregation_floor);
        // De-aggregated prefixes must actually beat the hijack via LPM.
        EXPECT_GT(announcement.length(), scope.length());
      }
    }
    if (plan.deaggregation_possible) {
      // The de-aggregated set covers the whole contested scope.
      std::uint64_t covered = 0;
      for (const auto& announcement : plan.announcements) {
        if (announcement != owned || !policy.reannounce_exact) {
          covered += announcement.size_v4();
        }
      }
      if (policy.reannounce_exact && owned.length() > scope.length()) {
        // owned is more specific than scope: it was counted above; adjust.
        covered -= 0;  // no-op for clarity
      }
      EXPECT_GE(covered, scope.size_v4());
    } else {
      // Infeasible: only the exact re-announce may be present.
      for (const auto& announcement : plan.announcements) {
        EXPECT_EQ(announcement, owned);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperty, ::testing::Values(50, 51, 52, 53, 54));

}  // namespace
}  // namespace artemis

// Second property suite: cross-checks of whole components against naive
// reference implementations, plus end-to-end experiment invariants swept
// over seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "artemis/experiment.hpp"
#include "json/json.hpp"
#include "rpki/roa.hpp"
#include "topology/generator.hpp"
#include "util/stats.hpp"

namespace artemis {
namespace {

class SeededProperty2 : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
};

// ----------------------------------------- as-rel serialize/parse identity

using GraphRoundTrip = SeededProperty2;

TEST_P(GraphRoundTrip, SerializeParsePreservesStructure) {
  topo::GeneratorParams params;
  params.tier1_count = 3 + static_cast<int>(rng.uniform_int(0, 4));
  params.tier2_count = static_cast<int>(rng.uniform_int(5, 40));
  params.stub_count = static_cast<int>(rng.uniform_int(10, 120));
  auto topo_rng = rng.fork("topo");
  const auto graph = topo::generate_topology(params, topo_rng);

  const auto parsed = topo::AsGraph::parse(graph.serialize());
  EXPECT_EQ(parsed.as_count(), graph.as_count());
  EXPECT_EQ(parsed.link_count(), graph.link_count());
  for (const auto asn : graph.all_ases()) {
    for (const auto& neighbor : graph.neighbors(asn)) {
      EXPECT_EQ(parsed.relationship(asn, neighbor.asn), neighbor.relationship)
          << asn << "-" << neighbor.asn;
    }
  }
  // Serialization is stable: a second round-trip produces identical text.
  EXPECT_EQ(parsed.serialize(), topo::AsGraph::parse(parsed.serialize()).serialize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRoundTrip, ::testing::Values(60, 61, 62, 63));

// -------------------------------------------------- ROA table vs naive scan

using RoaVsNaive = SeededProperty2;

TEST_P(RoaVsNaive, ValidateMatchesLinearReference) {
  std::vector<rpki::Roa> roas;
  rpki::RoaTable table;
  for (int i = 0; i < 120; ++i) {
    rpki::Roa roa;
    roa.prefix = net::Prefix(net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                             static_cast<int>(rng.uniform_int(8, 24)));
    roa.asn = static_cast<bgp::Asn>(rng.uniform_int(1, 20));
    const int slack = static_cast<int>(rng.uniform_int(0, 4));
    roa.max_length = std::min(32, roa.prefix.length() + slack);
    roas.push_back(roa);
    table.add(roa);
  }
  auto naive_validate = [&roas](const net::Prefix& p, bgp::Asn origin) {
    bool any = false;
    bool valid = false;
    for (const auto& roa : roas) {
      if (!roa.prefix.covers(p)) continue;
      any = true;
      if (roa.asn == origin && p.length() <= roa.effective_max_length()) valid = true;
    }
    if (!any) return rpki::Validity::kNotFound;
    return valid ? rpki::Validity::kValid : rpki::Validity::kInvalid;
  };
  for (int i = 0; i < 3000; ++i) {
    const net::Prefix p(net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                        static_cast<int>(rng.uniform_int(8, 28)));
    const auto origin = static_cast<bgp::Asn>(rng.uniform_int(1, 20));
    ASSERT_EQ(table.validate(p, origin), naive_validate(p, origin))
        << p.to_string() << " origin " << origin;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoaVsNaive, ::testing::Values(70, 71, 72, 73));

// --------------------------------------------------- Summary vs naive stats

using SummaryVsNaive = SeededProperty2;

TEST_P(SummaryVsNaive, MomentsMatchDirectComputation) {
  Summary summary;
  std::vector<double> xs;
  const int n = 1 + static_cast<int>(rng.uniform_int(0, 2000));
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 5.0);
    xs.push_back(x);
    summary.add(x);
  }
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / n;
  EXPECT_NEAR(summary.mean(), mean, 1e-9);
  EXPECT_NEAR(summary.min(), *std::min_element(xs.begin(), xs.end()), 0);
  EXPECT_NEAR(summary.max(), *std::max_element(xs.begin(), xs.end()), 0);
  if (n >= 2) {
    double acc = 0.0;
    for (const double x : xs) acc += (x - mean) * (x - mean);
    EXPECT_NEAR(summary.stddev(), std::sqrt(acc / (n - 1)), 1e-9);
  }
  // Percentiles bracket the data and are monotone in q.
  double previous = summary.percentile(0);
  for (int q = 5; q <= 100; q += 5) {
    const double value = summary.percentile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
  // CDF of the median is ~0.5 for odd n of distinct values.
  EXPECT_NEAR(summary.cdf_at(summary.median()), 0.5, 0.5001 / n + 0.51);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryVsNaive, ::testing::Values(80, 81, 82));

// ------------------------------------------------------- JSON fuzz round-trip

json::Value random_json(Rng& rng, int depth) {
  const auto kind = rng.uniform_int(0, depth <= 0 ? 3 : 5);
  switch (kind) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.chance(0.5));
    case 2: {
      if (rng.chance(0.5)) return json::Value(rng.uniform_int(-1000000, 1000000));
      return json::Value(rng.normal(0, 1000));
    }
    case 3: {
      std::string s;
      const auto len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        // Printable ASCII plus the escapes.
        const char options[] = "abcXYZ 012\"\\\n\t/";
        s += options[rng.uniform_u64(sizeof(options) - 1)];
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Array arr;
      const auto len = rng.uniform_int(0, 6);
      for (int i = 0; i < len; ++i) arr.push_back(random_json(rng, depth - 1));
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const auto len = rng.uniform_int(0, 6);
      for (int i = 0; i < len; ++i) {
        obj["k" + std::to_string(rng.uniform_int(0, 20))] = random_json(rng, depth - 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

using JsonFuzz = SeededProperty2;

TEST_P(JsonFuzz, DumpParseIsIdentity) {
  for (int i = 0; i < 200; ++i) {
    const auto original = random_json(rng, 4);
    const auto compact = json::parse(original.dump());
    EXPECT_EQ(compact, original);
    const auto pretty = json::parse(original.dump(2));
    EXPECT_EQ(pretty, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(90, 91, 92, 93));

// ------------------------------------------- end-to-end experiment invariants

using ExperimentInvariants = SeededProperty2;

TEST_P(ExperimentInvariants, TimingAndTimelineInvariantsHold) {
  topo::GeneratorParams topo_params;
  topo_params.tier1_count = 5;
  topo_params.tier2_count = 25;
  topo_params.stub_count = 100;
  auto topo_rng = rng.fork("topo");
  const auto graph = topo::generate_topology(topo_params, topo_rng);
  const auto stubs = graph.ases_in_tier(topo::Tier::kStub);

  core::ExperimentParams params;
  params.victim = stubs[rng.uniform_u64(stubs.size())];
  do {
    params.attacker = stubs[rng.uniform_u64(stubs.size())];
  } while (params.attacker == params.victim);
  params.victim_prefix = net::Prefix::must_parse("10.0.0.0/23");
  params.horizon = SimDuration::minutes(20);

  core::HijackExperiment experiment(graph, sim::NetworkParams{}, params,
                                    rng.fork("exp"));
  const auto result = experiment.run();

  // Event ordering: hijack <= detected <= applied <= converged.
  ASSERT_TRUE(result.detected_at.has_value());
  EXPECT_GE(*result.detected_at, result.hijack_at);
  ASSERT_TRUE(result.announcements_applied_at.has_value());
  EXPECT_GE(*result.announcements_applied_at, *result.detected_at);
  if (result.truth_converged_at) {
    EXPECT_GE(*result.truth_converged_at, *result.announcements_applied_at);
  }
  // Fractions stay within [0, 1]; timeline times are non-decreasing.
  SimTime previous = SimTime::zero();
  for (const auto& sample : result.timeline) {
    EXPECT_GE(sample.truth_fraction, 0.0);
    EXPECT_LE(sample.truth_fraction, 1.0);
    EXPECT_GE(sample.feed_fraction, 0.0);
    EXPECT_LE(sample.feed_fraction, 1.0);
    EXPECT_GE(sample.when, previous);
    previous = sample.when;
  }
  EXPECT_LE(result.max_hijacked_fraction, 1.0);
  EXPECT_LE(result.max_hijacked_impact, 1.0);
  // Detection-by-source entries can never precede the hijack.
  for (const auto& [source, when] : result.detection_by_source) {
    EXPECT_GE(when, result.hijack_at) << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExperimentInvariants,
                         ::testing::Values(100, 101, 102, 103, 104, 105));

}  // namespace
}  // namespace artemis

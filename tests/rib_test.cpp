#include <gtest/gtest.h>

#include "bgp/rib.hpp"

namespace artemis::bgp {
namespace {

Route make_route(std::string_view prefix, std::vector<Asn> path, Asn from,
                 std::uint32_t local_pref = 100) {
  Route r;
  r.prefix = net::Prefix::must_parse(prefix);
  r.attrs.as_path = AsPath(std::move(path));
  r.attrs.local_pref = local_pref;
  r.learned_from = from;
  return r;
}

// ------------------------------------------------------------ decision

TEST(DecisionTest, HigherLocalPrefWins) {
  const auto a = make_route("10.0.0.0/24", {1, 2, 3}, 1, 300);
  const auto b = make_route("10.0.0.0/24", {4, 5}, 4, 100);
  EXPECT_TRUE(better_route(a, b));   // longer path but higher pref
  EXPECT_FALSE(better_route(b, a));
}

TEST(DecisionTest, ShorterPathBreaksPrefTie) {
  const auto a = make_route("10.0.0.0/24", {1, 3}, 1);
  const auto b = make_route("10.0.0.0/24", {4, 5, 3}, 4);
  EXPECT_TRUE(better_route(a, b));
  EXPECT_FALSE(better_route(b, a));
}

TEST(DecisionTest, LowerOriginBreaksPathTie) {
  auto a = make_route("10.0.0.0/24", {1, 3}, 1);
  auto b = make_route("10.0.0.0/24", {4, 3}, 4);
  a.attrs.origin = Origin::kIgp;
  b.attrs.origin = Origin::kIncomplete;
  EXPECT_TRUE(better_route(a, b));
}

TEST(DecisionTest, LowerMedBreaksOriginTie) {
  auto a = make_route("10.0.0.0/24", {1, 3}, 1);
  auto b = make_route("10.0.0.0/24", {4, 3}, 4);
  a.attrs.med = 10;
  b.attrs.med = 5;
  EXPECT_TRUE(better_route(b, a));
}

TEST(DecisionTest, NeighborAsnIsFinalTieBreak) {
  const auto a = make_route("10.0.0.0/24", {1, 3}, 1);
  const auto b = make_route("10.0.0.0/24", {4, 3}, 4);
  EXPECT_TRUE(better_route(a, b));  // 1 < 4
}

TEST(DecisionTest, StrictPreference) {
  const auto a = make_route("10.0.0.0/24", {1, 3}, 1);
  EXPECT_FALSE(better_route(a, a));  // irreflexive
}

// ----------------------------------------------------------------- LocRib

TEST(LocRibTest, FirstAnnounceInstallsBest) {
  LocRib rib;
  const auto r = make_route("10.0.0.0/24", {5, 9}, 5);
  const auto change = rib.announce(r);
  ASSERT_TRUE(change);
  EXPECT_TRUE(change->is_new_prefix());
  EXPECT_EQ(change->new_best->learned_from, 5u);
  ASSERT_NE(rib.best(r.prefix), nullptr);
  EXPECT_EQ(rib.prefix_count(), 1u);
}

TEST(LocRibTest, BetterCandidateReplacesBest) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {5, 8, 9}, 5));
  const auto change = rib.announce(make_route("10.0.0.0/24", {6, 9}, 6));
  ASSERT_TRUE(change);
  EXPECT_EQ(change->old_best->learned_from, 5u);
  EXPECT_EQ(change->new_best->learned_from, 6u);
}

TEST(LocRibTest, WorseCandidateKeepsBestSilently) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {6, 9}, 6));
  const auto change = rib.announce(make_route("10.0.0.0/24", {5, 8, 9}, 5));
  EXPECT_FALSE(change);
  EXPECT_EQ(rib.best(net::Prefix::must_parse("10.0.0.0/24"))->learned_from, 6u);
  EXPECT_EQ(rib.candidates(net::Prefix::must_parse("10.0.0.0/24")).size(), 2u);
}

TEST(LocRibTest, IdenticalRefreshIsSilent) {
  LocRib rib;
  const auto r = make_route("10.0.0.0/24", {5, 9}, 5);
  rib.announce(r);
  EXPECT_FALSE(rib.announce(r));
}

TEST(LocRibTest, ImplicitWithdrawReplacesSameNeighbor) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {5, 9}, 5));
  const auto change = rib.announce(make_route("10.0.0.0/24", {5, 8, 8, 9}, 5));
  ASSERT_TRUE(change);  // same neighbor re-announced a different path
  EXPECT_EQ(change->new_best->path_length(), 4u);
  EXPECT_EQ(rib.candidates(net::Prefix::must_parse("10.0.0.0/24")).size(), 1u);
}

TEST(LocRibTest, WithdrawBestPromotesRunnerUp) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {6, 9}, 6));
  rib.announce(make_route("10.0.0.0/24", {5, 8, 9}, 5));
  const auto change = rib.withdraw(net::Prefix::must_parse("10.0.0.0/24"), 6);
  ASSERT_TRUE(change);
  EXPECT_EQ(change->new_best->learned_from, 5u);
  EXPECT_FALSE(change->is_removal());
}

TEST(LocRibTest, WithdrawNonBestIsSilent) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {6, 9}, 6));
  rib.announce(make_route("10.0.0.0/24", {5, 8, 9}, 5));
  EXPECT_FALSE(rib.withdraw(net::Prefix::must_parse("10.0.0.0/24"), 5));
}

TEST(LocRibTest, LastWithdrawRemovesPrefix) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {6, 9}, 6));
  const auto change = rib.withdraw(net::Prefix::must_parse("10.0.0.0/24"), 6);
  ASSERT_TRUE(change);
  EXPECT_TRUE(change->is_removal());
  EXPECT_EQ(rib.best(net::Prefix::must_parse("10.0.0.0/24")), nullptr);
  EXPECT_EQ(rib.prefix_count(), 0u);
}

TEST(LocRibTest, WithdrawUnknownIsSilent) {
  LocRib rib;
  EXPECT_FALSE(rib.withdraw(net::Prefix::must_parse("10.0.0.0/24"), 6));
  rib.announce(make_route("10.0.0.0/24", {6, 9}, 6));
  EXPECT_FALSE(rib.withdraw(net::Prefix::must_parse("10.0.0.0/24"), 99));
}

TEST(LocRibTest, LookupUsesLongestPrefixMatchOverBest) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/8", {1, 2}, 1));
  rib.announce(make_route("10.0.0.0/24", {3, 4}, 3));
  const auto via24 = rib.lookup(net::IpAddress::parse("10.0.0.77").value());
  ASSERT_TRUE(via24);
  EXPECT_EQ(via24->learned_from, 3u);
  const auto via8 = rib.lookup(net::IpAddress::parse("10.200.0.1").value());
  ASSERT_TRUE(via8);
  EXPECT_EQ(via8->learned_from, 1u);
  EXPECT_FALSE(rib.lookup(net::IpAddress::parse("11.0.0.1").value()));
}

TEST(LocRibTest, VisitBestCoversAllPrefixes) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/24", {1}, 1));
  rib.announce(make_route("10.0.1.0/24", {1}, 1));
  rib.announce(make_route("10.0.1.0/24", {2}, 2));  // extra candidate
  int count = 0;
  rib.visit_best([&](const Route&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(LocRibTest, VisitCoveredScopesToSubtree) {
  LocRib rib;
  rib.announce(make_route("10.0.0.0/23", {1}, 1));
  rib.announce(make_route("10.0.0.0/24", {1}, 1));
  rib.announce(make_route("10.1.0.0/24", {1}, 1));
  std::vector<std::string> seen;
  rib.visit_covered(net::Prefix::must_parse("10.0.0.0/23"),
                    [&](const Route& r) { seen.push_back(r.prefix.to_string()); });
  EXPECT_EQ(seen.size(), 2u);
}

TEST(LocRibTest, SelfOriginatedUsesNoAsnKey) {
  LocRib rib;
  auto self = make_route("10.0.0.0/23", {65001}, kNoAsn, 1000);
  rib.announce(self);
  // A learned candidate with lower pref must not displace it.
  rib.announce(make_route("10.0.0.0/23", {2, 65009}, 2, 100));
  EXPECT_EQ(rib.best(net::Prefix::must_parse("10.0.0.0/23"))->learned_from, kNoAsn);
  // Withdrawing the origin hands over to the learned candidate.
  const auto change = rib.withdraw(net::Prefix::must_parse("10.0.0.0/23"), kNoAsn);
  ASSERT_TRUE(change);
  EXPECT_EQ(change->new_best->learned_from, 2u);
}

}  // namespace
}  // namespace artemis::bgp

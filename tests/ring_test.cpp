// Direct unit tests for the pipeline's ring primitives: SpscRing (the
// per-element handoff) and BatchRing (the batch-granular slot pool).
// The pipeline suites exercise them end to end; these pin the primitive
// contracts one by one — capacity rounding, wrap-around at the
// power-of-two boundary, full-ring backpressure, buffer recycling (no
// cross-thread free), and the futex-policy sleep/wake protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/batch_ring.hpp"
#include "pipeline/observation_batch.hpp"
#include "pipeline/spsc_ring.hpp"
#include "pipeline/wait_policy.hpp"

namespace artemis::pipeline {
namespace {

// ---------------------------------------------------------------- SpscRing

TEST(SpscRingUnitTest, CapacityRounding) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);    // floor is 2
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);    // exact power stays
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingUnitTest, WrapAroundAtPowerOfTwoBoundary) {
  // Drive the head/tail sequence well past several multiples of the
  // capacity with a staggered fill level, so every slot index is used at
  // every offset relative to the mask.
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::uint64_t out = 0;
  for (int round = 0; round < 100; ++round) {
    const int fill = 1 + round % static_cast<int>(ring.capacity());
    for (int i = 0; i < fill; ++i) ASSERT_TRUE(ring.try_push(next_push++));
    for (int i = 0; i < fill; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRingUnitTest, FullRingRejectsWithoutDamage) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  // Backpressure: the rejected pushes must not disturb queued elements.
  EXPECT_FALSE(ring.try_push(100));
  EXPECT_FALSE(ring.try_push(101));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingUnitTest, SlotBuffersAreRecycledByCopyAssign) {
  // The handoff contract: push copy-assigns INTO the slot, pop copy-
  // assigns OUT of it — heap buffers stay owned by their original side,
  // so nothing is freed cross-thread. Observable single-threaded effect:
  // a slot's string keeps its capacity across a pop/push cycle, and the
  // consumer's out-buffer keeps its capacity across pops.
  SpscRing<std::string> ring(2);
  const std::string big(512, 'x');
  ASSERT_TRUE(ring.try_push(big));
  std::string out;
  out.reserve(1024);
  const std::size_t out_cap = out.capacity();
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, big);
  EXPECT_GE(out.capacity(), out_cap);  // copy-assign reused out's buffer
  // The slot now holds a 512-char buffer; a shorter push must fit into it
  // without the ring ever destroying the slot element.
  ASSERT_TRUE(ring.try_push(std::string("short")));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "short");
}

TEST(SpscRingUnitTest, FutexHooksWakeConsumerOnPush) {
  SpscRing<int> ring(8);
  constexpr int kCount = 20000;
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    int value = 0;
    while (static_cast<int>(received.size()) < kCount) {
      if (ring.try_pop(value)) {
        received.push_back(value);
        ring.notify_tail();
        continue;
      }
      // The futex wait protocol: snapshot, re-check, sleep on the
      // snapshot. A push between snapshot and wait moves head, so the
      // wait returns immediately — no lost wake-up.
      const std::uint64_t seen = ring.head_seq();
      if (ring.try_pop(value)) {
        received.push_back(value);
        ring.notify_tail();
        continue;
      }
      ring.wait_head_changed(seen);
    }
  });
  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(int{i})) {
      const std::uint64_t seen = ring.tail_seq();
      if (ring.try_push(int{i})) break;
      ring.wait_tail_changed(seen);
    }
    ring.notify_head();
  }
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

// --------------------------------------------------------------- BatchRing

TEST(BatchRingTest, DepthClampAndPreReservedSlots) {
  BatchRing tiny(0, 0);
  EXPECT_EQ(tiny.depth(), 2u);          // floor is 2 slots
  EXPECT_EQ(tiny.batch_capacity(), 1u); // and 1-observation batches
  BatchRing ring(8, 128, WaitPolicy::kFutex);
  EXPECT_EQ(ring.depth(), 8u);
  EXPECT_EQ(ring.batch_capacity(), 128u);
  EXPECT_EQ(ring.policy(), WaitPolicy::kFutex);
  EXPECT_TRUE(ring.all_recycled());
}

TEST(BatchRingTest, PublishTakeIsFifoAtBatchGranularity) {
  BatchRing ring(4, 16);
  std::atomic<bool> stop{false};
  for (int round = 0; round < 50; ++round) {
    for (int b = 0; b < 3; ++b) {
      ObservationBatch* batch = ring.try_acquire();
      ASSERT_NE(batch, nullptr);
      for (int i = 0; i < b + 1; ++i) {
        batch->emplace_back().vantage =
            static_cast<std::uint32_t>(round * 10 + b);
      }
      ring.publish(batch);
    }
    for (int b = 0; b < 3; ++b) {
      ObservationBatch* batch = ring.take(stop);
      ASSERT_NE(batch, nullptr);
      ASSERT_EQ(batch->size(), static_cast<std::size_t>(b + 1));
      EXPECT_EQ((*batch)[0].vantage, static_cast<std::uint32_t>(round * 10 + b));
      ring.release(batch);
    }
  }
  EXPECT_TRUE(ring.all_recycled());
}

TEST(BatchRingTest, PoolExhaustionBackpressuresAcquire) {
  BatchRing ring(3, 4);
  std::vector<ObservationBatch*> held;
  for (int i = 0; i < 3; ++i) {
    ObservationBatch* batch = ring.try_acquire();
    ASSERT_NE(batch, nullptr);
    held.push_back(batch);
  }
  // Every slot is in flight: the pool is the backpressure bound.
  EXPECT_EQ(ring.try_acquire(), nullptr);
  EXPECT_FALSE(ring.all_recycled());
  // Publishing does not mint slots; only release() recycles.
  ring.publish(held.back());
  held.pop_back();
  EXPECT_EQ(ring.try_acquire(), nullptr);
  std::atomic<bool> stop{false};
  ObservationBatch* taken = ring.take(stop);
  ASSERT_NE(taken, nullptr);
  ring.release(taken);
  EXPECT_NE(ring.try_acquire(), nullptr);
  // (held batches intentionally leak back on destruction — the pool owns
  // the memory, not the handles.)
}

TEST(BatchRingTest, SlotsRecycleThroughThePoolNotTheAllocator) {
  // Pointer identity across laps: the same pool slots keep coming back,
  // cleared but with their element storage intact — the zero-allocation
  // steady state and the no-cross-thread-free guarantee in one property.
  BatchRing ring(2, 8);
  std::set<ObservationBatch*> seen;
  std::set<const feeds::Observation*> element_storage;
  std::atomic<bool> stop{false};
  for (int lap = 0; lap < 20; ++lap) {
    ObservationBatch* batch = ring.acquire();
    seen.insert(batch);
    batch->emplace_back().source = "recycled-source-string";
    element_storage.insert(&(*batch)[0]);
    ring.publish(batch);
    ObservationBatch* taken = ring.take(stop);
    ASSERT_EQ(taken, batch);  // FIFO of one
    ASSERT_EQ(taken->size(), 1u);
    ring.release(taken);
  }
  // Exactly the two pool slots cycled, and each slot's element storage
  // stayed at a stable address across every clear() — no reallocation.
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(element_storage.size(), 2u);
  EXPECT_TRUE(ring.all_recycled());
}

TEST(BatchRingTest, TakeDrainsPublishedBatchesBeforeHonoringStop) {
  BatchRing ring(4, 4);
  ObservationBatch* batch = ring.try_acquire();
  ASSERT_NE(batch, nullptr);
  batch->emplace_back();
  ring.publish(batch);
  std::atomic<bool> stop{true};  // stop already set when take() is called
  ObservationBatch* taken = ring.take(stop);
  ASSERT_NE(taken, nullptr);  // the published batch still comes out
  ring.release(taken);
  EXPECT_EQ(ring.take(stop), nullptr);  // then — and only then — nullptr
  EXPECT_TRUE(ring.all_recycled());
}

TEST(BatchRingTest, FutexPolicyCrossThreadTransfer) {
  // Producer and consumer on separate threads under the futex policy:
  // both sides sleep (pool exhaustion on one, empty ring on the other)
  // and must wake each other without losing a batch or an ordering.
  BatchRing futex_ring(2, 4, WaitPolicy::kFutex);  // tiny pool: maximal sleeping
  constexpr std::uint32_t kBatches = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::uint32_t> received;
  received.reserve(kBatches);
  std::thread consumer([&] {
    for (;;) {
      ObservationBatch* batch = futex_ring.take(stop);
      if (batch == nullptr) return;
      ASSERT_EQ(batch->size(), 1u);
      received.push_back((*batch)[0].vantage);
      futex_ring.release(batch);
    }
  });
  for (std::uint32_t i = 0; i < kBatches; ++i) {
    ObservationBatch* batch = futex_ring.acquire();  // sleeps when exhausted
    batch->emplace_back().vantage = i;
    futex_ring.publish(batch);
  }
  stop.store(true, std::memory_order_release);
  futex_ring.wake_consumer();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kBatches));
  for (std::uint32_t i = 0; i < kBatches; ++i) ASSERT_EQ(received[i], i);
  EXPECT_TRUE(futex_ring.all_recycled());
}

TEST(BatchRingTest, WakeConsumerUnblocksFutexSleeper) {
  BatchRing ring(2, 4, WaitPolicy::kFutex);
  std::atomic<bool> stop{false};
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_EQ(ring.take(stop), nullptr);  // sleeps until woken post-stop
    returned.store(true, std::memory_order_release);
  });
  // Give the consumer time to reach the futex wait, then stop+wake.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  ring.wake_consumer();
  consumer.join();
  EXPECT_TRUE(returned.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace artemis::pipeline

// Route-origin-validation enforcement in the simulator (extension; E8).
#include <gtest/gtest.h>

#include "rpki/roa.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"

namespace artemis::sim {
namespace {

// 1 (tier1) provider-of 2 provider-of 3(victim); 1 provider-of 4(attacker).
topo::AsGraph fork_graph() {
  topo::AsGraph g;
  g.add_as(1, topo::Tier::kTier1);
  g.add_as(2, topo::Tier::kTier2);
  g.add_as(3, topo::Tier::kStub);
  g.add_as(4, topo::Tier::kStub);
  g.add_customer_link(1, 2);
  g.add_customer_link(2, 3);
  g.add_customer_link(1, 4);
  return g;
}

const net::Prefix kPrefix = net::Prefix::must_parse("10.0.0.0/23");

rpki::RoaTable victim_roas() {
  rpki::RoaTable roas;
  rpki::Roa roa;
  roa.prefix = kPrefix;
  roa.asn = 3;
  roa.max_length = 24;
  roas.add(roa);
  return roas;
}

TEST(RovTest, EnforcingSpeakerDropsInvalidAnnouncements) {
  const auto graph = fork_graph();
  const auto roas = victim_roas();
  NetworkParams params;
  params.mrai = SimDuration::zero();
  params.roa_table = &roas;
  params.rov_fraction = 1.0;  // everyone enforces
  Network network(graph, params, Rng(1));
  EXPECT_EQ(network.rov_enforcer_count(), 4u);

  network.speaker(3).originate(kPrefix);  // valid origin
  network.run_to_convergence();
  EXPECT_EQ(network.resolve_origin(1, kPrefix.address()), 3u);

  network.speaker(4).originate(kPrefix);  // invalid origin (hijack)
  network.run_to_convergence();
  // AS1 hears the hijack directly from its customer 4 but drops it.
  EXPECT_EQ(network.resolve_origin(1, kPrefix.address()), 3u);
  EXPECT_EQ(network.resolve_origin(2, kPrefix.address()), 3u);
  EXPECT_GT(network.total_stats().rov_dropped, 0u);
}

TEST(RovTest, NoRoaTableMeansNoEnforcement) {
  const auto graph = fork_graph();
  NetworkParams params;
  params.mrai = SimDuration::zero();
  params.rov_fraction = 1.0;  // ignored without a table
  Network network(graph, params, Rng(2));
  EXPECT_EQ(network.rov_enforcer_count(), 0u);

  network.speaker(3).originate(kPrefix);
  network.run_to_convergence();
  network.speaker(4).originate(kPrefix);
  network.run_to_convergence();
  // AS1 prefers its direct customer 4 (shorter path, same pref band).
  EXPECT_EQ(network.resolve_origin(1, kPrefix.address()), 4u);
}

TEST(RovTest, PartialDeploymentLeavesResidualCapture) {
  const auto graph = fork_graph();
  const auto roas = victim_roas();
  NetworkParams params;
  params.mrai = SimDuration::zero();
  params.roa_table = &roas;
  params.rov_fraction = 0.0;
  Network network(graph, params, Rng(3));
  EXPECT_EQ(network.rov_enforcer_count(), 0u);  // fraction 0: nobody
}

TEST(RovTest, ForgedOriginEvadesRov) {
  // Victim one level deeper than in fork_graph, so the attacker's forged
  // two-hop path beats the legitimate three-hop path at the tier-1.
  topo::AsGraph graph;
  graph.add_as(1, topo::Tier::kTier1);
  graph.add_as(2, topo::Tier::kTier2);
  graph.add_as(6, topo::Tier::kTier2);
  graph.add_as(3, topo::Tier::kStub);
  graph.add_as(4, topo::Tier::kStub);
  graph.add_customer_link(1, 2);
  graph.add_customer_link(2, 6);
  graph.add_customer_link(6, 3);
  graph.add_customer_link(1, 4);
  const auto roas = victim_roas();
  NetworkParams params;
  params.mrai = SimDuration::zero();
  params.roa_table = &roas;
  params.rov_fraction = 1.0;
  Network network(graph, params, Rng(4));

  network.speaker(3).originate(kPrefix);
  network.run_to_convergence();
  // Attacker forges the victim as origin: path [4, 3] validates kValid.
  network.speaker(4).originate_with_path(kPrefix, bgp::AsPath({4, 3}));
  network.run_to_convergence();
  // AS1 accepts it (valid origin!) and prefers the shorter customer path.
  const auto* route = network.speaker(1).best_route(kPrefix);
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->attrs.as_path.contains(4));
  EXPECT_EQ(route->origin_as(), 3u);  // looks legitimate to ROV
  EXPECT_EQ(network.total_stats().rov_dropped, 0u);
}

TEST(RovTest, RovAlsoAcceptsAuthorizedMoreSpecifics) {
  const auto graph = fork_graph();
  const auto roas = victim_roas();  // maxLength 24
  NetworkParams params;
  params.mrai = SimDuration::zero();
  params.roa_table = &roas;
  params.rov_fraction = 1.0;
  Network network(graph, params, Rng(5));

  // The victim's mitigation /24s validate kValid and propagate.
  network.speaker(3).originate(net::Prefix::must_parse("10.0.0.0/24"));
  network.speaker(3).originate(net::Prefix::must_parse("10.0.1.0/24"));
  network.run_to_convergence();
  EXPECT_EQ(network.resolve_origin(1, net::IpAddress::parse("10.0.1.1").value()), 3u);
}

}  // namespace
}  // namespace artemis::sim

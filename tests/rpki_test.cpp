#include <gtest/gtest.h>

#include "artemis/detection.hpp"
#include "rpki/roa.hpp"

namespace artemis::rpki {
namespace {

Roa make_roa(std::string_view prefix, bgp::Asn asn, int max_length = 0) {
  Roa roa;
  roa.prefix = net::Prefix::must_parse(prefix);
  roa.asn = asn;
  roa.max_length = max_length;
  return roa;
}

TEST(RoaTest, EffectiveMaxLengthDefaultsToPrefixLength) {
  EXPECT_EQ(make_roa("10.0.0.0/23", 1).effective_max_length(), 23);
  EXPECT_EQ(make_roa("10.0.0.0/23", 1, 24).effective_max_length(), 24);
}

TEST(RoaTableTest, AddValidation) {
  RoaTable table;
  EXPECT_THROW(table.add(make_roa("10.0.0.0/23", bgp::kNoAsn)), std::invalid_argument);
  EXPECT_THROW(table.add(make_roa("10.0.0.0/23", 1, 22)), std::invalid_argument);
  EXPECT_THROW(table.add(make_roa("10.0.0.0/23", 1, 33)), std::invalid_argument);
  table.add(make_roa("10.0.0.0/23", 1, 24));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoaTableTest, NotFoundWithoutCoveringRoa) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/23", 65001));
  EXPECT_EQ(table.validate(net::Prefix::must_parse("192.0.2.0/24"), 65001),
            Validity::kNotFound);
  // A ROA for a more-specific does NOT cover the less-specific route.
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.0.0/16"), 65001),
            Validity::kNotFound);
}

TEST(RoaTableTest, ValidExactMatch) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/23", 65001));
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.0.0/23"), 65001),
            Validity::kValid);
}

TEST(RoaTableTest, InvalidWrongOrigin) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/23", 65001));
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.0.0/23"), 666),
            Validity::kInvalid);
}

TEST(RoaTableTest, MaxLengthGovernsMoreSpecifics) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/23", 65001, 24));
  // /24 within maxLength: valid for the right origin.
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.1.0/24"), 65001),
            Validity::kValid);
  // /25 exceeds maxLength: invalid even for the right origin (this is the
  // forged-more-specific defense ROAs provide).
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.1.0/25"), 65001),
            Validity::kInvalid);
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.1.0/24"), 666),
            Validity::kInvalid);
}

TEST(RoaTableTest, MultipleRoasAnyMatchIsValid) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/23", 65001));
  table.add(make_roa("10.0.0.0/23", 65002));  // multi-origin (anycast)
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.0.0/23"), 65001),
            Validity::kValid);
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.0.0/23"), 65002),
            Validity::kValid);
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.0.0.0/23"), 666),
            Validity::kInvalid);
}

TEST(RoaTableTest, AncestorRoaCoversMoreSpecificAnnouncement) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/8", 65001, 24));
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.9.0.0/16"), 65001),
            Validity::kValid);
  EXPECT_EQ(table.validate(net::Prefix::must_parse("10.9.0.0/16"), 666),
            Validity::kInvalid);
}

TEST(RoaTableTest, CoveringEnumeratesAncestors) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/8", 1));
  table.add(make_roa("10.0.0.0/16", 2));
  table.add(make_roa("10.0.0.0/24", 3));
  table.add(make_roa("10.1.0.0/16", 4));  // sibling, not covering
  const auto covering = table.covering(net::Prefix::must_parse("10.0.0.0/24"));
  ASSERT_EQ(covering.size(), 3u);
  EXPECT_EQ(covering[0].asn, 1u);  // root-to-leaf order
  EXPECT_EQ(covering[1].asn, 2u);
  EXPECT_EQ(covering[2].asn, 3u);
}

TEST(RoaTableTest, JsonRoundTrip) {
  RoaTable table;
  table.add(make_roa("10.0.0.0/23", 65001, 24));
  table.add(make_roa("192.0.2.0/24", 65002));
  const auto round = RoaTable::from_json(table.to_json());
  EXPECT_EQ(round.size(), 2u);
  EXPECT_EQ(round.validate(net::Prefix::must_parse("10.0.1.0/24"), 65001),
            Validity::kValid);
  EXPECT_EQ(round.validate(net::Prefix::must_parse("192.0.2.0/24"), 65002),
            Validity::kValid);
}

TEST(RoaTableTest, FromJsonRejectsBadDocuments) {
  EXPECT_THROW(RoaTable::from_json(json::parse(R"({"roas":[{"prefix":"x","asn":1}]})")),
               std::invalid_argument);
  EXPECT_THROW(
      RoaTable::from_json(json::parse(R"({"roas":[{"prefix":"10.0.0.0/8","asn":0}]})")),
      std::invalid_argument);
  EXPECT_THROW(RoaTable::from_json(json::parse(R"({})")), json::JsonError);
}

TEST(ValidityTest, Names) {
  EXPECT_EQ(to_string(Validity::kValid), "valid");
  EXPECT_EQ(to_string(Validity::kInvalid), "invalid");
  EXPECT_EQ(to_string(Validity::kNotFound), "not-found");
}

// -------------------------------------------- detection-service coupling

core::Config empty_owned_config() {
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("203.0.113.0/24");
  owned.legitimate_origins.insert(7);
  config.add_owned(std::move(owned));
  return config;
}

feeds::Observation announce(std::string_view prefix, bgp::Asn origin) {
  feeds::Observation obs;
  obs.type = feeds::ObservationType::kAnnouncement;
  obs.source = "ris-live";
  obs.vantage = 9;
  obs.prefix = net::Prefix::must_parse(prefix);
  obs.attrs.as_path = bgp::AsPath({9, origin});
  obs.delivered_at = SimTime::at_seconds(1);
  return obs;
}

TEST(DetectionRpkiTest, InvalidAnnouncementOutsideOwnedSpaceAlerts) {
  const auto config = empty_owned_config();
  RoaTable roas;
  roas.add(make_roa("10.0.0.0/23", 65001));
  core::DetectionOptions options;
  options.roa_table = &roas;
  core::DetectionService detector(config, options);

  detector.process(announce("10.0.0.0/23", 666));  // rpki-invalid
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].type, core::HijackType::kRpkiInvalid);
  EXPECT_EQ(detector.alerts()[0].offender, 666u);
}

TEST(DetectionRpkiTest, ValidAndNotFoundStaySilent) {
  const auto config = empty_owned_config();
  RoaTable roas;
  roas.add(make_roa("10.0.0.0/23", 65001));
  core::DetectionOptions options;
  options.roa_table = &roas;
  core::DetectionService detector(config, options);

  detector.process(announce("10.0.0.0/23", 65001));  // valid
  detector.process(announce("172.16.0.0/16", 666));  // not-found
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionRpkiTest, WithoutRoaTableNoRpkiAlerts) {
  const auto config = empty_owned_config();
  core::DetectionService detector(config);
  detector.process(announce("10.0.0.0/23", 666));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionRpkiTest, OwnedSpaceChecksStillApplyWithRoaTable) {
  const auto config = empty_owned_config();
  RoaTable roas;
  core::DetectionOptions options;
  options.roa_table = &roas;
  core::DetectionService detector(config, options);
  detector.process(announce("203.0.113.0/24", 666));  // classic origin hijack
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].type, core::HijackType::kExactOrigin);
}

}  // namespace
}  // namespace artemis::rpki

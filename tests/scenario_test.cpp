#include <gtest/gtest.h>

#include "artemis/scenario.hpp"

namespace artemis::core {
namespace {

constexpr std::string_view kSmallScenario = R"({
  "seed": 7,
  "topology": {"tier1": 4, "tier2": 20, "stubs": 80},
  "network": {"mrai_s": 10, "max_prefix_len": 24},
  "experiment": {
    "victim_prefix": "10.0.0.0/23",
    "victim": "stub:0",
    "attacker": "stub:-1",
    "hijack_at_s": 600,
    "horizon_min": 15
  }
})";

TEST(ScenarioTest, LoadsAndResolvesActors) {
  const auto scenario = load_scenario_text(kSmallScenario);
  EXPECT_EQ(scenario.seed, 7u);
  EXPECT_EQ(scenario.graph.as_count(), 104u);
  const auto stubs = scenario.graph.ases_in_tier(topo::Tier::kStub);
  EXPECT_EQ(scenario.experiment.victim, stubs.front());
  EXPECT_EQ(scenario.experiment.attacker, stubs.back());
  EXPECT_EQ(scenario.network.mrai, SimDuration::seconds(10));
  EXPECT_EQ(scenario.experiment.hijack_at, SimTime::at_seconds(600));
}

TEST(ScenarioTest, RunsEndToEnd) {
  const auto scenario = load_scenario_text(kSmallScenario);
  const auto result = scenario.run();
  ASSERT_TRUE(result.detected_at.has_value());
  EXPECT_TRUE(result.deaggregation_possible);
  ASSERT_TRUE(result.truth_converged_at.has_value());
}

TEST(ScenarioTest, DeterministicAcrossLoads) {
  const auto a = load_scenario_text(kSmallScenario).run();
  const auto b = load_scenario_text(kSmallScenario).run();
  ASSERT_TRUE(a.detected_at && b.detected_at);
  EXPECT_EQ(*a.detected_at, *b.detected_at);
  EXPECT_EQ(a.max_hijacked_fraction, b.max_hijacked_fraction);
}

TEST(ScenarioTest, ExplicitAsnActors) {
  // Generate once to learn valid ASNs, then reference them numerically.
  const auto probe = load_scenario_text(kSmallScenario);
  const auto stubs = probe.graph.ases_in_tier(topo::Tier::kStub);
  const std::string text = std::string(R"({
    "seed": 7,
    "topology": {"tier1": 4, "tier2": 20, "stubs": 80},
    "experiment": {"victim": ")") +
                           std::to_string(stubs[3]) + R"(", "attacker": ")" +
                           std::to_string(stubs[4]) + R"("}})";
  const auto scenario = load_scenario_text(text);
  EXPECT_EQ(scenario.experiment.victim, stubs[3]);
  EXPECT_EQ(scenario.experiment.attacker, stubs[4]);
}

TEST(ScenarioTest, NegativeAndTierIndexing) {
  const auto scenario = load_scenario_text(R"({
    "seed": 1,
    "topology": {"tier1": 3, "tier2": 10, "stubs": 20},
    "experiment": {"victim": "tier2:2", "attacker": "tier1:-1"}})");
  EXPECT_EQ(scenario.experiment.victim,
            scenario.graph.ases_in_tier(topo::Tier::kTier2)[2]);
  EXPECT_EQ(scenario.experiment.attacker,
            scenario.graph.ases_in_tier(topo::Tier::kTier1).back());
}

TEST(ScenarioTest, ForgedFirstHopBuildsType1Path) {
  const auto scenario = load_scenario_text(R"({
    "seed": 1,
    "topology": {"tier1": 3, "tier2": 10, "stubs": 20},
    "experiment": {"victim": "stub:0", "attacker": "stub:1",
                   "forged_first_hop": true, "detect_fake_first_hop": true}})");
  ASSERT_TRUE(scenario.experiment.forged_path.has_value());
  EXPECT_EQ(scenario.experiment.forged_path->hops(),
            (std::vector<bgp::Asn>{scenario.experiment.attacker,
                                   scenario.experiment.victim}));
  EXPECT_TRUE(scenario.experiment.app.detection.detect_fake_first_hop);
}

TEST(ScenarioTest, JournalFsyncPolicyParses) {
  const auto scenario = load_scenario_text(R"({
    "seed": 1,
    "topology": {"tier1": 3, "tier2": 10, "stubs": 20},
    "experiment": {"victim": "stub:0", "attacker": "stub:1",
                   "journal_dir": "/tmp/j", "journal_fsync": "interval:250"}})");
  EXPECT_EQ(scenario.experiment.app.journal.fsync_policy,
            journal::FsyncPolicy::kInterval);
  EXPECT_EQ(scenario.experiment.app.journal.fsync_interval_ms, 250);
  EXPECT_EQ(journal::fsync_policy_to_string(scenario.experiment.app.journal),
            "interval:250");

  EXPECT_THROW(load_scenario_text(R"({"experiment":{"victim":"stub:0",
      "attacker":"stub:1","journal_fsync":"sometimes"}})"),
               std::invalid_argument);
}

TEST(ScenarioTest, RejectsBadDocuments) {
  EXPECT_THROW(load_scenario_text(R"({})"), json::JsonError);  // no experiment
  EXPECT_THROW(load_scenario_text(R"({"experiment":{"victim":"stub:0",
      "attacker":"stub:0"}})"),
               std::invalid_argument);  // same actor
  EXPECT_THROW(load_scenario_text(R"({"experiment":{"victim":"nope:0",
      "attacker":"stub:1"}})"),
               std::invalid_argument);  // bad tier
  EXPECT_THROW(load_scenario_text(R"({"experiment":{"victim":"stub:99999",
      "attacker":"stub:1"}})"),
               std::invalid_argument);  // index out of range
  EXPECT_THROW(load_scenario_text(R"({"experiment":{"victim":"999999",
      "attacker":"stub:1"}})"),
               std::invalid_argument);  // unknown ASN
  EXPECT_THROW(load_scenario_text(R"({"experiment":{"victim_prefix":"zzz",
      "victim":"stub:0","attacker":"stub:1"}})"),
               std::invalid_argument);  // bad prefix
}

TEST(ScenarioResultJsonTest, SerializesKeyFields) {
  const auto scenario = load_scenario_text(kSmallScenario);
  const auto result = scenario.run();
  const auto doc = result_to_json(result);
  EXPECT_TRUE(doc.at("detected").as_bool());
  EXPECT_GT(doc.at("detection_delay_s").as_number(), 0.0);
  EXPECT_TRUE(doc.at("deaggregation_possible").as_bool());
  EXPECT_GE(doc.at("timeline").as_array().size(), 2u);
  EXPECT_EQ(doc.at("mitigation_announcements").as_array().size(),
            result.mitigation_announcements.size());
  // The document is valid JSON end to end.
  EXPECT_NO_THROW(json::parse(doc.dump()));
}

}  // namespace
}  // namespace artemis::core

#include <gtest/gtest.h>

#include <set>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/speaker.hpp"
#include "topology/generator.hpp"

namespace artemis::sim {
namespace {

// --------------------------------------------------------------- Simulator

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(SimTime::at_seconds(3), [&] { order.push_back(3); });
  sim.at(SimTime::at_seconds(1), [&] { order.push_back(1); });
  sim.at(SimTime::at_seconds(2), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::at_seconds(3));
}

TEST(SimulatorTest, SameInstantFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(SimTime::at_seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  SimTime fired;
  sim.at(SimTime::at_seconds(5), [&] {
    sim.after(SimDuration::seconds(2), [&] { fired = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired, SimTime::at_seconds(7));
}

TEST(SimulatorTest, PastEventsRunNow) {
  Simulator sim;
  sim.at(SimTime::at_seconds(10), [&] {
    sim.at(SimTime::at_seconds(1), [&] {
      EXPECT_EQ(sim.now(), SimTime::at_seconds(10));  // clamped to now
    });
  });
  EXPECT_EQ(sim.run_all(), 2u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutOvershooting) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::at_seconds(1), [&] { ++fired; });
  sim.at(SimTime::at_seconds(10), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime::at_seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::at_seconds(5));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.next_event_time(), SimTime::at_seconds(10));
}

TEST(SimulatorTest, IdleAndNextEventSentinels) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.next_event_time(), SimTime::never());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventBudgetGuardsLivelock) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.after(SimDuration::seconds(1), forever); };
  sim.at(SimTime::zero(), forever);
  EXPECT_THROW(sim.run_all(1000), std::runtime_error);
}

// ------------------------------------------------------------- BgpSpeaker

struct Captured {
  bgp::Asn to;
  bgp::UpdateMessage update;
  SimTime at;
};

struct SpeakerHarness {
  Simulator sim;
  std::vector<Captured> sent;
  topo::PolicyConfig policy;

  std::unique_ptr<BgpSpeaker> make(bgp::Asn asn) {
    auto speaker = std::make_unique<BgpSpeaker>(
        sim, asn, policy, Rng(asn),
        [this](bgp::Asn to, const bgp::UpdateMessage& update) {
          sent.push_back({to, update, sim.now()});
        });
    return speaker;
  }

  static SessionConfig session(bgp::Asn peer, topo::Relationship rel,
                               SimDuration mrai = SimDuration::zero()) {
    SessionConfig s;
    s.peer = peer;
    s.relationship = rel;
    s.mrai = mrai;
    return s;
  }
};

TEST(SpeakerTest, OriginateExportsToAllSessions) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->add_session(SpeakerHarness::session(2, topo::Relationship::kPeer));
  speaker->add_session(SpeakerHarness::session(3, topo::Relationship::kCustomer));
  speaker->originate(net::Prefix::must_parse("10.0.0.0/23"));
  h.sim.run_all();
  ASSERT_EQ(h.sent.size(), 3u);  // self-originated goes everywhere
  for (const auto& msg : h.sent) {
    ASSERT_EQ(msg.update.announced.size(), 1u);
    EXPECT_EQ(msg.update.attrs.as_path.to_string(), "100");
  }
}

TEST(SpeakerTest, LearnedFromProviderOnlyExportsToCustomers) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->add_session(SpeakerHarness::session(2, topo::Relationship::kPeer));
  speaker->add_session(SpeakerHarness::session(3, topo::Relationship::kCustomer));

  bgp::UpdateMessage update;
  update.sender = 1;
  update.attrs.as_path = bgp::AsPath({1, 50});
  update.announced.push_back(net::Prefix::must_parse("10.0.0.0/23"));
  speaker->receive(update, 1);
  h.sim.run_all();

  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].to, 3u);
  EXPECT_EQ(h.sent[0].update.attrs.as_path.to_string(), "100 1 50");
}

TEST(SpeakerTest, LearnedFromCustomerExportsEverywhereExceptSource) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->add_session(SpeakerHarness::session(2, topo::Relationship::kPeer));
  speaker->add_session(SpeakerHarness::session(3, topo::Relationship::kCustomer));
  speaker->add_session(SpeakerHarness::session(4, topo::Relationship::kCustomer));

  bgp::UpdateMessage update;
  update.sender = 3;
  update.attrs.as_path = bgp::AsPath({3});
  update.announced.push_back(net::Prefix::must_parse("10.0.0.0/23"));
  speaker->receive(update, 3);
  h.sim.run_all();

  std::set<bgp::Asn> targets;
  for (const auto& msg : h.sent) targets.insert(msg.to);
  EXPECT_EQ(targets, (std::set<bgp::Asn>{1, 2, 4}));  // not back to 3
}

TEST(SpeakerTest, PrefersCustomerRouteOverProviderRoute) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->add_session(SpeakerHarness::session(3, topo::Relationship::kCustomer));

  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  bgp::UpdateMessage via_provider;
  via_provider.sender = 1;
  via_provider.attrs.as_path = bgp::AsPath({1, 50});  // shorter
  via_provider.announced.push_back(prefix);
  speaker->receive(via_provider, 1);

  bgp::UpdateMessage via_customer;
  via_customer.sender = 3;
  via_customer.attrs.as_path = bgp::AsPath({3, 60, 70, 50});  // longer but customer
  via_customer.announced.push_back(prefix);
  speaker->receive(via_customer, 3);

  ASSERT_NE(speaker->best_route(prefix), nullptr);
  EXPECT_EQ(speaker->best_route(prefix)->learned_from, 3u);
}

TEST(SpeakerTest, DropsLoopedPaths) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  bgp::UpdateMessage update;
  update.sender = 1;
  update.attrs.as_path = bgp::AsPath({1, 100, 50});  // contains self
  update.announced.push_back(net::Prefix::must_parse("10.0.0.0/23"));
  speaker->receive(update, 1);
  EXPECT_EQ(speaker->best_route(net::Prefix::must_parse("10.0.0.0/23")), nullptr);
  EXPECT_EQ(speaker->stats().loops_dropped, 1u);
}

TEST(SpeakerTest, FiltersTooSpecificPrefixes) {
  SpeakerHarness h;
  h.policy.max_accepted_prefix_len = 24;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  bgp::UpdateMessage update;
  update.sender = 1;
  update.attrs.as_path = bgp::AsPath({1, 50});
  update.announced.push_back(net::Prefix::must_parse("10.0.0.0/25"));
  update.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  speaker->receive(update, 1);
  EXPECT_EQ(speaker->best_route(net::Prefix::must_parse("10.0.0.0/25")), nullptr);
  EXPECT_NE(speaker->best_route(net::Prefix::must_parse("10.0.0.0/24")), nullptr);
  EXPECT_EQ(speaker->stats().prefixes_filtered_too_specific, 1u);
}

TEST(SpeakerTest, WithdrawPropagatesWhenRouteLost) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->add_session(SpeakerHarness::session(3, topo::Relationship::kCustomer));
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");

  bgp::UpdateMessage announce;
  announce.sender = 1;
  announce.attrs.as_path = bgp::AsPath({1, 50});
  announce.announced.push_back(prefix);
  speaker->receive(announce, 1);
  h.sim.run_all();
  h.sent.clear();

  bgp::UpdateMessage withdraw;
  withdraw.sender = 1;
  withdraw.withdrawn.push_back(prefix);
  speaker->receive(withdraw, 1);
  h.sim.run_all();

  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].to, 3u);
  ASSERT_EQ(h.sent[0].update.withdrawn.size(), 1u);
  EXPECT_EQ(h.sent[0].update.withdrawn[0], prefix);
}

TEST(SpeakerTest, NoSpuriousWithdrawToPeerThatNeverGotTheRoute) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->add_session(SpeakerHarness::session(2, topo::Relationship::kPeer));
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");

  // Provider route: exported to nobody here (no customers).
  bgp::UpdateMessage announce;
  announce.sender = 1;
  announce.attrs.as_path = bgp::AsPath({1, 50});
  announce.announced.push_back(prefix);
  speaker->receive(announce, 1);
  h.sim.run_all();
  EXPECT_TRUE(h.sent.empty());

  bgp::UpdateMessage withdraw;
  withdraw.sender = 1;
  withdraw.withdrawn.push_back(prefix);
  speaker->receive(withdraw, 1);
  h.sim.run_all();
  EXPECT_TRUE(h.sent.empty());  // peer 2 never had it: no withdraw sent
}

TEST(SpeakerTest, MraiBatchesChanges) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(
      SpeakerHarness::session(3, topo::Relationship::kCustomer, SimDuration::seconds(30)));
  speaker->originate(net::Prefix::must_parse("10.0.0.0/24"));
  speaker->originate(net::Prefix::must_parse("10.0.1.0/24"));
  h.sim.run_all();
  // Both prefixes share one attribute set -> one batched update at the
  // session's first scan tick (<= 30 s).
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].update.announced.size(), 2u);
  EXPECT_LE(h.sent[0].at, SimTime::at_seconds(30));
}

TEST(SpeakerTest, MraiZeroSendsImmediately) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(3, topo::Relationship::kCustomer));
  speaker->originate(net::Prefix::must_parse("10.0.0.0/24"));
  h.sim.run_all();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].at, SimTime::zero());
}

TEST(SpeakerTest, ChangeTapSeesBestChangesWithPrependedPath) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  std::vector<bgp::UpdateMessage> tapped;
  speaker->add_change_tap([&](const bgp::UpdateMessage& u) { tapped.push_back(u); });

  bgp::UpdateMessage update;
  update.sender = 1;
  update.attrs.as_path = bgp::AsPath({1, 50});
  update.announced.push_back(net::Prefix::must_parse("10.0.0.0/23"));
  speaker->receive(update, 1);
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(tapped[0].attrs.as_path.to_string(), "100 1 50");

  bgp::UpdateMessage withdraw;
  withdraw.sender = 1;
  withdraw.withdrawn.push_back(net::Prefix::must_parse("10.0.0.0/23"));
  speaker->receive(withdraw, 1);
  ASSERT_EQ(tapped.size(), 2u);
  EXPECT_EQ(tapped[1].withdrawn.size(), 1u);
}

TEST(SpeakerTest, SelfOriginatedTapNotPrepended) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  std::vector<bgp::UpdateMessage> tapped;
  speaker->add_change_tap([&](const bgp::UpdateMessage& u) { tapped.push_back(u); });
  speaker->originate(net::Prefix::must_parse("10.0.0.0/23"));
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(tapped[0].attrs.as_path.to_string(), "100");
}

TEST(SpeakerTest, ResolveOriginFollowsLpm) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kProvider));
  speaker->originate(net::Prefix::must_parse("10.0.0.0/23"));
  bgp::UpdateMessage update;
  update.sender = 1;
  update.attrs.as_path = bgp::AsPath({1, 66});
  update.announced.push_back(net::Prefix::must_parse("10.0.1.0/24"));
  speaker->receive(update, 1);

  EXPECT_EQ(speaker->resolve_origin(net::IpAddress::parse("10.0.0.1").value()), 100u);
  EXPECT_EQ(speaker->resolve_origin(net::IpAddress::parse("10.0.1.1").value()), 66u);
  EXPECT_EQ(speaker->resolve_origin(net::IpAddress::parse("11.0.0.1").value()),
            bgp::kNoAsn);
}

TEST(SpeakerTest, SessionValidation) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  EXPECT_THROW(speaker->add_session(SpeakerHarness::session(100, topo::Relationship::kPeer)),
               std::invalid_argument);
  EXPECT_THROW(
      speaker->add_session(SpeakerHarness::session(bgp::kNoAsn, topo::Relationship::kPeer)),
      std::invalid_argument);
  speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kPeer));
  EXPECT_THROW(speaker->add_session(SpeakerHarness::session(1, topo::Relationship::kPeer)),
               std::invalid_argument);
  EXPECT_TRUE(speaker->has_session(1));
}

TEST(SpeakerTest, PacingEnforcesMinimumSpacingPerSession) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(
      SpeakerHarness::session(3, topo::Relationship::kCustomer, SimDuration::seconds(10)));
  // Originate a new prefix every second for 30 s: updates to the session
  // must be spaced >= ~10 s apart (one per scan tick), batching the rest.
  for (int i = 0; i < 30; ++i) {
    const auto prefix =
        net::Prefix(net::IpAddress::v4(0x0A000000 + (static_cast<std::uint32_t>(i) << 8)), 24);
    h.sim.at(SimTime::at_seconds(i), [&speaker, prefix] { speaker->originate(prefix); });
  }
  h.sim.run_all();
  ASSERT_GE(h.sent.size(), 2u);
  std::size_t announced_total = 0;
  for (std::size_t i = 0; i < h.sent.size(); ++i) {
    announced_total += h.sent[i].update.announced.size();
    if (i > 0) {
      EXPECT_GE((h.sent[i].at - h.sent[i - 1].at).as_seconds(), 9.999)
          << "updates " << i - 1 << " and " << i;
    }
  }
  EXPECT_EQ(announced_total, 30u);  // nothing lost to batching
}

TEST(SpeakerTest, WithdrawalAndReannounceSameTickCoalesce) {
  SpeakerHarness h;
  auto speaker = h.make(100);
  speaker->add_session(
      SpeakerHarness::session(3, topo::Relationship::kCustomer, SimDuration::seconds(5)));
  const auto prefix = net::Prefix::must_parse("10.0.0.0/24");
  speaker->originate(prefix);
  speaker->withdraw_origin(prefix);  // before the first flush
  h.sim.run_all();
  // Net effect is nothing: the prefix was never advertised, so neither an
  // announcement nor a withdrawal must reach the peer.
  EXPECT_TRUE(h.sent.empty());
}

// ---------------------------------------------------------------- Network

topo::AsGraph line_graph() {
  // 1 (tier1) -- provider of --> 2 -- provider of --> 3
  topo::AsGraph g;
  g.add_as(1, topo::Tier::kTier1);
  g.add_as(2, topo::Tier::kTier2);
  g.add_as(3, topo::Tier::kStub);
  g.add_customer_link(1, 2);
  g.add_customer_link(2, 3);
  return g;
}

TEST(NetworkTest, PropagatesAnnouncementAcrossHops) {
  const auto graph = line_graph();
  NetworkParams params;
  params.mrai = SimDuration::zero();  // fast convergence for the unit test
  Network network(graph, params, Rng(1));
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  network.speaker(3).originate(prefix);
  network.run_to_convergence();

  EXPECT_EQ(network.resolve_origin(1, prefix.address()), 3u);
  EXPECT_EQ(network.resolve_origin(2, prefix.address()), 3u);
  const auto* route_at_1 = network.speaker(1).best_route(prefix);
  ASSERT_NE(route_at_1, nullptr);
  EXPECT_EQ(route_at_1->attrs.as_path.to_string(), "2 3");
}

TEST(NetworkTest, ValleyFreeBlocksPeerTransit) {
  // peers 1 -- 2; 2 is provider of 3; 1 is provider of 4.
  // 4's route reaches 2 (via peer 1? no: 1 learned it from customer 4, so
  // 1 may export to peer 2). 3 must see it (2 exports provider/peer routes
  // to customers). But a route learned by 1 from peer 2 must not reach
  // 1's other peers.
  topo::AsGraph g;
  for (bgp::Asn a = 1; a <= 5; ++a) g.add_as(a);
  g.add_peer_link(1, 2);
  g.add_peer_link(1, 5);
  g.add_customer_link(2, 3);
  g.add_customer_link(1, 4);
  NetworkParams params;
  params.mrai = SimDuration::zero();
  Network network(g, params, Rng(2));
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  network.speaker(3).originate(prefix);
  network.run_to_convergence();

  // 3 -> 2 (customer->provider), 2 -> 1 (customer route to peer), 1 -> 4
  // (to customer) but NOT 1 -> 5 (peer route to a peer = valley).
  EXPECT_EQ(network.resolve_origin(1, prefix.address()), 3u);
  EXPECT_EQ(network.resolve_origin(4, prefix.address()), 3u);
  EXPECT_EQ(network.resolve_origin(5, prefix.address()), bgp::kNoAsn);
}

TEST(NetworkTest, LinkDelaySampledWithinBounds) {
  const auto graph = line_graph();
  NetworkParams params;
  params.min_link_delay = SimDuration::millis(10);
  params.max_link_delay = SimDuration::millis(150);
  Network network(graph, params, Rng(3));
  const auto d = network.link_delay(1, 2);
  EXPECT_GE(d, params.min_link_delay);
  EXPECT_LE(d, params.max_link_delay);
  EXPECT_EQ(network.link_delay(1, 2), network.link_delay(2, 1));  // symmetric
  EXPECT_THROW(network.link_delay(1, 3), std::invalid_argument);
}

TEST(NetworkTest, UnknownSpeakerThrows) {
  const auto graph = line_graph();
  Network network(graph, NetworkParams{}, Rng(4));
  EXPECT_THROW(network.speaker(99), std::invalid_argument);
}

TEST(NetworkTest, StatsAccumulate) {
  const auto graph = line_graph();
  NetworkParams params;
  params.mrai = SimDuration::zero();
  Network network(graph, params, Rng(5));
  network.speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  network.run_to_convergence();
  const auto stats = network.total_stats();
  EXPECT_GE(stats.updates_sent, 2u);
  EXPECT_EQ(stats.updates_sent, stats.updates_received);
}

TEST(NetworkTest, ConvergenceDeterministicGivenSeed) {
  const auto graph = line_graph();
  NetworkParams params;
  auto run = [&](std::uint64_t seed) {
    Network network(graph, params, Rng(seed));
    network.speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
    network.run_to_convergence();
    return network.simulator().now();
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(NetworkTest, MraiDelaysPropagation) {
  const auto graph = line_graph();
  NetworkParams fast;
  fast.mrai = SimDuration::zero();
  NetworkParams slow;
  slow.mrai = SimDuration::seconds(30);
  auto converge_time = [&](const NetworkParams& params) {
    Network network(graph, params, Rng(7));
    network.speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
    network.run_to_convergence();
    return network.simulator().now();
  };
  EXPECT_LT(converge_time(fast), SimTime::at_seconds(2));
  EXPECT_GT(converge_time(slow), SimTime::at_seconds(2));
}

}  // namespace
}  // namespace artemis::sim

// The telemetry subsystem (ISSUE 8): registry semantics, histogram
// math, Prometheus rendering, the /metrics + /healthz HTTP server, and
// the end-to-end ingest wiring against the scripted fault server.
//
// The load-bearing contracts:
//   * log2 bucketing is exact at the power-of-two boundaries and the
//     merged view of N cells equals one cell fed everything;
//   * quantile estimates are monotone and never exceed the exact max;
//   * /healthz turns 503 exactly when the no-silent-loss ledger is
//     violated (journaled + skipped + dropped > converted);
//   * a live artemis ingest run with telemetry serves parseable
//     Prometheus text whose counters equal the final stats report —
//     including a non-empty artemis_detection_delay_seconds histogram.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "ingest/fault_server.hpp"
#include "ingest/fixture.hpp"
#include "ingest/http.hpp"
#include "ingest/supervisor.hpp"
#include "json/json.hpp"
#include "pipeline/sharded_detector.hpp"
#include "telemetry/http_server.hpp"

namespace artemis::telemetry {
namespace {

using ingest_test::Fault;
using ingest_test::FaultServer;
using ingest_test::fixture_window;
using ingest_test::fresh_dir;
using ingest_test::make_config;

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketBoundariesAreExactPowersOfTwo) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("artemis_test_hist", "boundary test");
  h->record(0);                     // bucket 0: exactly zero
  h->record(1);                     // bucket 1: [1, 1]
  h->record(2);                     // bucket 2: [2, 3]
  h->record(3);                     // bucket 2
  h->record(4);                     // bucket 3: [4, 7]
  h->record((1ull << 20) - 1);      // bucket 20: [2^19, 2^20 - 1]
  h->record(1ull << 20);            // bucket 21
  h->record(~0ull);                 // bucket 64 (top of the range)

  const HistogramSnapshot snap = registry.histogram_snapshot("artemis_test_hist");
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.counts[20], 1u);
  EXPECT_EQ(snap.counts[21], 1u);
  EXPECT_EQ(snap.counts[64], 1u);
  EXPECT_EQ(snap.total, 8u);
  EXPECT_EQ(snap.max, ~0ull);

  EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(20), (1ull << 20) - 1);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(64), ~0ull);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClampedByExactMax) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("artemis_test_q", "quantile test");
  std::uint64_t sum = 0;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h->record(v);
    sum += v;
  }
  const HistogramSnapshot snap = registry.histogram_snapshot("artemis_test_q");
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, 100u);

  const double p50 = snap.quantile(0.50);
  const double p95 = snap.quantile(0.95);
  const double p99 = snap.quantile(0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // No estimate may exceed the tracked exact max, even though the last
  // bucket's nominal upper bound is 127.
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(snap.quantile(1.0), 100.0);

  const HistogramSnapshot empty =
      registry.histogram_snapshot("artemis_test_absent");
  EXPECT_EQ(empty.total, 0u);
  EXPECT_EQ(empty.quantile(0.99), 0.0);
}

TEST(HistogramTest, MergeAcrossCellsEqualsOneCellFedEverything) {
  MetricsRegistry split;
  Histogram* a = split.histogram("artemis_test_m", "merge test");
  Histogram* b = split.histogram("artemis_test_m", "merge test");  // 2nd cell
  MetricsRegistry whole;
  Histogram* one = whole.histogram("artemis_test_m", "merge test");

  const std::vector<std::uint64_t> values = {0, 1, 5, 9, 127, 128, 5000};
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 2 == 0 ? a : b)->record(values[i]);
    one->record(values[i]);
  }
  const HistogramSnapshot merged = split.histogram_snapshot("artemis_test_m");
  const HistogramSnapshot direct = whole.histogram_snapshot("artemis_test_m");
  EXPECT_EQ(merged.total, direct.total);
  EXPECT_EQ(merged.sum, direct.sum);
  EXPECT_EQ(merged.max, direct.max);
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    EXPECT_EQ(merged.counts[i], direct.counts[i]) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(merged.quantile(0.95), direct.quantile(0.95));
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CountersSumAndGaugesMaxOnRead) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("artemis_test_total", "counter merge");
  Counter* c2 = registry.counter("artemis_test_total", "counter merge");
  c1->add(2);
  c2->add(3);
  Gauge* g1 = registry.gauge("artemis_test_level", "gauge merge");
  Gauge* g2 = registry.gauge("artemis_test_level", "gauge merge");
  g1->set(7);
  g2->set(4);

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("artemis_test_total 5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("artemis_test_level 7\n"), std::string::npos) << text;

  const json::Value snap = registry.snapshot_json();
  EXPECT_EQ(snap.at("artemis_test_total").at("value").as_number(), 5.0);
  EXPECT_EQ(snap.at("artemis_test_level").at("value").as_number(), 7.0);
}

TEST(MetricsRegistryTest, LabeledCellsRenderSeparately) {
  MetricsRegistry registry;
  registry.counter("artemis_src_total", "per source", "source=\"a\"")->add(10);
  registry.counter("artemis_src_total", "per source", "source=\"b\"")->add(20);

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("artemis_src_total{source=\"a\"} 10\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("artemis_src_total{source=\"b\"} 20\n"), std::string::npos)
      << text;
  // One HELP/TYPE pair for the series, not per cell.
  EXPECT_EQ(text.find("# TYPE artemis_src_total counter"),
            text.rfind("# TYPE artemis_src_total counter"));
}

/// Every non-comment line must be `name[{labels}] value` with a
/// parseable numeric value — the shape a Prometheus scraper accepts.
void expect_parseable_prometheus(const std::string& text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    ASSERT_FALSE(name_part.empty()) << line;
    char* rest = nullptr;
    std::strtod(value_part.c_str(), &rest);
    EXPECT_EQ(*rest, '\0') << "unparseable value in: " << line;
    // Label bodies, when present, must be balanced and trailing.
    const std::size_t brace = name_part.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name_part.back(), '}') << line;
    }
  }
}

TEST(MetricsRegistryTest, HistogramRenderIsCumulativeAndParseable) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("artemis_test_delay_seconds",
                                    "render test", 1e-6);
  h->record(0);
  h->record(3);     // bucket 2 (le 3)
  h->record(1000);  // bucket 10 (le 1023)

  const std::string text = registry.render_prometheus();
  expect_parseable_prometheus(text);
  EXPECT_NE(text.find("# TYPE artemis_test_delay_seconds histogram"),
            std::string::npos);
  // Cumulative counts: bucket 0 holds 1, by le=3 it is 2, +Inf is 3.
  EXPECT_NE(text.find("artemis_test_delay_seconds_bucket{le=\"0\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("artemis_test_delay_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("artemis_test_delay_seconds_count 3\n"), std::string::npos)
      << text;
  // The sum renders in scaled units: 1003 us = 0.001003 s.
  EXPECT_NE(text.find("artemis_test_delay_seconds_sum 0.001003"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, SnapshotJsonCarriesHistogramPercentiles) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("artemis_test_delay_seconds",
                                    "snapshot test", 1e-6);
  for (int i = 0; i < 100; ++i) h->record(1'000'000);  // 1 s each
  const json::Value snap = registry.snapshot_json();
  const json::Value& entry = snap.at("artemis_test_delay_seconds");
  EXPECT_EQ(entry.at("count").as_number(), 100.0);
  EXPECT_NEAR(entry.at("max").as_number(), 1.0, 1e-9);
  EXPECT_LE(entry.at("p50").as_number(), 1.0);
  EXPECT_LE(entry.at("p99").as_number(), 1.0);
  EXPECT_GT(entry.at("p50").as_number(), 0.0);
}

// ------------------------------------------------------------- HTTP

struct FetchResult {
  int status = 0;
  std::string body;
};

FetchResult fetch(const std::string& url_text) {
  const auto url = ingest::parse_url(url_text);
  EXPECT_TRUE(url.has_value()) << url_text;
  FetchResult out;
  if (!url) return out;
  ingest::HttpGetOptions options;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 2000;
  const ingest::HttpResult result =
      ingest::http_get(*url, options, [&](std::span<const std::uint8_t> chunk) {
        out.body.append(reinterpret_cast<const char*>(chunk.data()),
                        chunk.size());
      });
  out.status = result.status;
  return out;
}

TEST(MetricsServerTest, MetricsAndHealthzRoundTrip) {
  MetricsRegistry registry;
  registry.counter("artemis_test_total", "round trip")->add(42);

  MetricsServerOptions options;  // ephemeral port, default-ok health
  MetricsServer server(registry, options);
  ASSERT_GT(server.port(), 0);

  const FetchResult metrics = fetch(server.url_for("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  expect_parseable_prometheus(metrics.body);
  EXPECT_NE(metrics.body.find("artemis_test_total 42\n"), std::string::npos);

  const FetchResult health = fetch(server.url_for("/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const FetchResult missing = fetch(server.url_for("/nope"));
  EXPECT_EQ(missing.status, 404);
}

TEST(MetricsServerTest, HealthzReports503OnLedgerViolation) {
  MetricsRegistry registry;
  const IngestCounters ledger = register_ingest(registry);
  ledger.converted->add(10);
  ledger.journaled->add(11);  // accounted > converted: impossible in vivo

  MetricsServerOptions options;
  options.health = [&ledger]() {
    HealthStatus status;
    const std::uint64_t converted = ledger.converted->value();
    const std::uint64_t accounted = ledger.journaled->value() +
                                    ledger.skipped->value() +
                                    ledger.dropped->value();
    if (accounted > converted) {
      status.ok = false;
      status.body = "ledger violation\n";
    }
    return status;
  };
  MetricsServer server(registry, options);
  EXPECT_EQ(fetch(server.url_for("/healthz")).status, 503);

  ledger.converted->add(1);  // ledger balances again
  EXPECT_EQ(fetch(server.url_for("/healthz")).status, 200);
}

TEST(MetricsServerTest, PeriodicSnapshotFileIsWrittenAtomically) {
  MetricsRegistry registry;
  registry.counter("artemis_test_total", "snapshot file")->add(7);
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "artemis_snapshot.json")
          .string();
  std::filesystem::remove(path);
  {
    MetricsServerOptions options;
    options.snapshot_path = path;
    options.snapshot_interval_ms = 10;
    MetricsServer server(registry, options);
    // The destructor writes a final snapshot even if no tick elapsed.
  }
  const json::Value snap = json::parse_file(path);
  EXPECT_EQ(snap.at("artemis_test_total").at("value").as_number(), 7.0);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// --------------------------------------------------- end-to-end ingest

TEST(TelemetryIngestTest, LiveIngestServesLedgerDelayAndHealth) {
  FaultServer archive;
  archive.add_file("/window.mrt", fixture_window(40));
  Fault fault;
  fault.kind = Fault::Kind::kStatus;
  fault.status = 503;  // one transient failure: retries + backoff count
  archive.push_fault(fault);

  MetricsRegistry registry;
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions detect_options;
  detect_options.shards = 2;
  detect_options.metrics = &registry;
  pipeline::ShardedDetector detector(config, detect_options);

  ingest::SupervisorOptions options;
  options.journal_dir = fresh_dir("telemetry_e2e");
  options.fetch.connect_timeout_ms = 2000;
  options.fetch.io_timeout_ms = 2000;
  options.fetch.backoff_ms = 1;
  options.fetch.max_backoff_ms = 2;
  options.sleep = [](std::int64_t) {};
  options.pipeline.metrics = &registry;
  options.pipeline.detection_tap =
      [&detector](std::span<const feeds::Observation> batch) {
        detector.submit_batch(batch);
      };
  ingest::IngestSupervisor supervisor(options,
                                      {archive.url_for("/window.mrt")});

  MetricsServerOptions server_options;
  const IngestCounters& ledger = supervisor.metrics();
  server_options.health = [&ledger]() {
    HealthStatus status;
    if (!ledger.enabled()) return status;
    const std::uint64_t converted = ledger.converted->value();
    const std::uint64_t accounted = ledger.journaled->value() +
                                    ledger.skipped->value() +
                                    ledger.dropped->value();
    if (accounted > converted) {
      status.ok = false;
      status.body = "ledger violation\n";
    }
    return status;
  };
  MetricsServer server(registry, server_options);

  const ingest::IngestReport report = supervisor.run();
  detector.flush();
  ASSERT_EQ(report.sources.size(), 1u);
  const ingest::SourceReport& sr = report.sources[0];
  ASSERT_EQ(sr.outcome, ingest::FetchOutcome::kOk);

  // The registry's ledger equals the stats report's, term by term.
  EXPECT_EQ(ledger.converted->value(), sr.feed.convert.observations);
  EXPECT_EQ(ledger.journaled->value(), sr.feed.observations_journaled);
  EXPECT_EQ(ledger.skipped->value(), sr.feed.observations_skipped);
  EXPECT_EQ(ledger.dropped->value(), sr.feed.observations_dropped);
  EXPECT_EQ(ledger.convert_records->value(), sr.feed.convert.records);
  EXPECT_EQ(ledger.bytes_fetched->value(), sr.fetch.bytes_fetched);
  EXPECT_GE(ledger.fetch_retries->value(), 1u);   // the scripted 503
  EXPECT_GE(ledger.backoff_waits->value(), 1u);   // its backoff sleep
  EXPECT_GE(ledger.cursor_persists->value(), 1u);

  // Detection fired on the fixture's hijacks, so the delay histogram is
  // non-empty and the per-shard detection counters add up.
  const HistogramSnapshot delay =
      registry.histogram_snapshot("artemis_detection_delay_seconds");
  EXPECT_GT(delay.total, 0u);
  EXPECT_EQ(delay.total, detector.merged_alerts().size());

  // Live Prometheus scrape: parseable, ledger visible, delay present.
  const FetchResult metrics = fetch(server.url_for("/metrics"));
  ASSERT_EQ(metrics.status, 200);
  expect_parseable_prometheus(metrics.body);
  EXPECT_NE(metrics.body.find("artemis_ingest_observations_converted_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("artemis_journal_records_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("artemis_detection_delay_seconds_bucket"),
            std::string::npos);
  // The histogram is non-empty, so the scraped count must not be zero.
  EXPECT_EQ(metrics.body.find("artemis_detection_delay_seconds_count 0\n"),
            std::string::npos);
  EXPECT_EQ(fetch(server.url_for("/healthz")).status, 200);
}

}  // namespace
}  // namespace artemis::telemetry

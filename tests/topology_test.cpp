#include <gtest/gtest.h>

#include "topology/as_graph.hpp"
#include "topology/generator.hpp"
#include "topology/policy.hpp"

namespace artemis::topo {
namespace {

TEST(AsGraphTest, AddAsIdempotent) {
  AsGraph g;
  g.add_as(1, Tier::kTier1);
  g.add_as(1, Tier::kStub);  // second add must not downgrade tier
  EXPECT_EQ(g.as_count(), 1u);
  EXPECT_EQ(g.tier(1), Tier::kTier1);
}

TEST(AsGraphTest, RejectAsnZero) {
  AsGraph g;
  EXPECT_THROW(g.add_as(0), std::invalid_argument);
}

TEST(AsGraphTest, CustomerLinkSetsBothPerspectives) {
  AsGraph g;
  g.add_as(1);
  g.add_as(2);
  g.add_customer_link(1, 2);  // 1 is provider of 2
  EXPECT_EQ(g.relationship(1, 2), Relationship::kCustomer);
  EXPECT_EQ(g.relationship(2, 1), Relationship::kProvider);
  EXPECT_TRUE(g.has_link(1, 2));
  EXPECT_TRUE(g.has_link(2, 1));
  EXPECT_EQ(g.link_count(), 1u);
}

TEST(AsGraphTest, PeerLinkSymmetric) {
  AsGraph g;
  g.add_as(1);
  g.add_as(2);
  g.add_peer_link(1, 2);
  EXPECT_EQ(g.relationship(1, 2), Relationship::kPeer);
  EXPECT_EQ(g.relationship(2, 1), Relationship::kPeer);
}

TEST(AsGraphTest, RejectsSelfAndDuplicateLinks) {
  AsGraph g;
  g.add_as(1);
  g.add_as(2);
  EXPECT_THROW(g.add_peer_link(1, 1), std::invalid_argument);
  g.add_customer_link(1, 2);
  EXPECT_THROW(g.add_customer_link(1, 2), std::invalid_argument);
  EXPECT_THROW(g.add_peer_link(1, 2), std::invalid_argument);
  EXPECT_THROW(g.add_customer_link(2, 1), std::invalid_argument);
}

TEST(AsGraphTest, UnknownAsThrows) {
  AsGraph g;
  g.add_as(1);
  EXPECT_THROW(g.add_customer_link(1, 99), std::invalid_argument);
  EXPECT_THROW(g.neighbors(99), std::invalid_argument);
  EXPECT_THROW(g.tier(99), std::invalid_argument);
  EXPECT_FALSE(g.relationship(99, 1).has_value());
  EXPECT_FALSE(g.relationship(1, 99).has_value());
}

TEST(AsGraphTest, NeighborsWithFilter) {
  AsGraph g;
  for (bgp::Asn a = 1; a <= 4; ++a) g.add_as(a);
  g.add_customer_link(1, 2);
  g.add_customer_link(1, 3);
  g.add_peer_link(1, 4);
  EXPECT_EQ(g.neighbors_with(1, Relationship::kCustomer),
            (std::vector<bgp::Asn>{2, 3}));
  EXPECT_EQ(g.neighbors_with(1, Relationship::kPeer), (std::vector<bgp::Asn>{4}));
  EXPECT_EQ(g.neighbors_with(2, Relationship::kProvider), (std::vector<bgp::Asn>{1}));
}

TEST(AsGraphTest, SerializeParseRoundTrip) {
  AsGraph g;
  for (bgp::Asn a = 1; a <= 4; ++a) g.add_as(a);
  g.add_customer_link(1, 2);
  g.add_peer_link(2, 3);
  g.add_customer_link(3, 4);
  const auto text = g.serialize();
  const AsGraph parsed = AsGraph::parse(text);
  EXPECT_EQ(parsed.as_count(), 4u);
  EXPECT_EQ(parsed.link_count(), 3u);
  EXPECT_EQ(parsed.relationship(1, 2), Relationship::kCustomer);
  EXPECT_EQ(parsed.relationship(2, 3), Relationship::kPeer);
  EXPECT_EQ(parsed.relationship(4, 3), Relationship::kProvider);
}

TEST(AsGraphTest, ParseRejectsMalformed) {
  EXPECT_THROW(AsGraph::parse("1|2"), std::invalid_argument);
  EXPECT_THROW(AsGraph::parse("1|2|5"), std::invalid_argument);
  EXPECT_THROW(AsGraph::parse("a|2|0"), std::invalid_argument);
}

TEST(AsGraphTest, ParseSkipsCommentsAndBlanks) {
  const AsGraph g = AsGraph::parse("# comment\n\n1|2|-1\n  \n");
  EXPECT_EQ(g.as_count(), 2u);
  EXPECT_EQ(g.link_count(), 1u);
}

TEST(RelationshipTest, ReverseIsInvolution) {
  for (const auto r :
       {Relationship::kCustomer, Relationship::kPeer, Relationship::kProvider}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

// ----------------------------------------------------------------- policy

TEST(PolicyTest, PreferenceBandsOrdered) {
  const PreferenceBands bands;
  EXPECT_GT(bands.self, bands.customer);
  EXPECT_GT(bands.customer, bands.peer);
  EXPECT_GT(bands.peer, bands.provider);
  EXPECT_EQ(bands.for_relationship(Relationship::kCustomer), bands.customer);
  EXPECT_EQ(bands.for_relationship(Relationship::kPeer), bands.peer);
  EXPECT_EQ(bands.for_relationship(Relationship::kProvider), bands.provider);
}

TEST(PolicyTest, ValleyFreeExportMatrix) {
  using R = Relationship;
  // Routes from customers (or self) go everywhere.
  for (const auto to : {R::kCustomer, R::kPeer, R::kProvider}) {
    EXPECT_TRUE(may_export(R::kCustomer, to, false));
    EXPECT_TRUE(may_export(R::kProvider, to, true));  // self flag dominates
  }
  // Routes from peers/providers go only to customers.
  for (const auto from : {R::kPeer, R::kProvider}) {
    EXPECT_TRUE(may_export(from, R::kCustomer, false));
    EXPECT_FALSE(may_export(from, R::kPeer, false));
    EXPECT_FALSE(may_export(from, R::kProvider, false));
  }
}

// -------------------------------------------------------------- generator

TEST(GeneratorTest, SizesAndTiers) {
  GeneratorParams params;
  params.tier1_count = 5;
  params.tier2_count = 20;
  params.stub_count = 50;
  Rng rng(1);
  const AsGraph g = generate_topology(params, rng);
  EXPECT_EQ(g.as_count(), 75u);
  EXPECT_EQ(g.ases_in_tier(Tier::kTier1).size(), 5u);
  EXPECT_EQ(g.ases_in_tier(Tier::kTier2).size(), 20u);
  EXPECT_EQ(g.ases_in_tier(Tier::kStub).size(), 50u);
}

TEST(GeneratorTest, Tier1FullMesh) {
  GeneratorParams params;
  params.tier1_count = 6;
  params.tier2_count = 0;
  params.stub_count = 0;
  Rng rng(2);
  const AsGraph g = generate_topology(params, rng);
  const auto tier1s = g.ases_in_tier(Tier::kTier1);
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      EXPECT_EQ(g.relationship(tier1s[i], tier1s[j]), Relationship::kPeer);
    }
  }
  EXPECT_EQ(g.link_count(), 15u);  // 6 choose 2
}

TEST(GeneratorTest, EveryNonTier1HasAProvider) {
  GeneratorParams params;
  Rng rng(3);
  const AsGraph g = generate_topology(params, rng);
  for (const auto asn : g.all_ases()) {
    if (g.tier(asn) == Tier::kTier1) continue;
    EXPECT_FALSE(g.neighbors_with(asn, Relationship::kProvider).empty())
        << "AS" << asn << " has no provider";
  }
}

TEST(GeneratorTest, AllConnectedToTier1) {
  GeneratorParams params;
  params.tier2_count = 40;
  params.stub_count = 200;
  Rng rng(4);
  const AsGraph g = generate_topology(params, rng);
  EXPECT_TRUE(all_connected_to_tier1(g));
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorParams params;
  Rng rng_a(77);
  Rng rng_b(77);
  const AsGraph a = generate_topology(params, rng_a);
  const AsGraph b = generate_topology(params, rng_b);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorParams params;
  Rng rng_a(1);
  Rng rng_b(2);
  EXPECT_NE(generate_topology(params, rng_a).serialize(),
            generate_topology(params, rng_b).serialize());
}

TEST(GeneratorTest, StubsHaveNoCustomers) {
  GeneratorParams params;
  Rng rng(5);
  const AsGraph g = generate_topology(params, rng);
  for (const auto asn : g.ases_in_tier(Tier::kStub)) {
    EXPECT_TRUE(g.neighbors_with(asn, Relationship::kCustomer).empty());
  }
}

TEST(GeneratorTest, MultihomingWithinBounds) {
  GeneratorParams params;
  params.min_providers = 2;
  params.max_providers = 3;
  params.tier2_count = 30;
  params.stub_count = 100;
  Rng rng(6);
  const AsGraph g = generate_topology(params, rng);
  for (const auto asn : g.ases_in_tier(Tier::kStub)) {
    const auto providers = g.neighbors_with(asn, Relationship::kProvider).size();
    EXPECT_GE(providers, 2u);
    EXPECT_LE(providers, 3u);
  }
}

TEST(GeneratorTest, FirstAsnOffsetRespected) {
  GeneratorParams params;
  params.first_asn = 1000;
  params.tier1_count = 2;
  params.tier2_count = 3;
  params.stub_count = 4;
  Rng rng(7);
  const AsGraph g = generate_topology(params, rng);
  for (const auto asn : g.all_ases()) {
    EXPECT_GE(asn, 1000u);
    EXPECT_LT(asn, 1009u);
  }
}

TEST(GeneratorTest, RejectsBadParams) {
  Rng rng(8);
  GeneratorParams params;
  params.tier1_count = 0;
  EXPECT_THROW(generate_topology(params, rng), std::invalid_argument);
  params = GeneratorParams{};
  params.min_providers = 0;
  EXPECT_THROW(generate_topology(params, rng), std::invalid_argument);
  params = GeneratorParams{};
  params.max_providers = 0;
  EXPECT_THROW(generate_topology(params, rng), std::invalid_argument);
}

TEST(GeneratorTest, NoTier2FallsBackToTier1Providers) {
  GeneratorParams params;
  params.tier2_count = 0;
  params.stub_count = 10;
  Rng rng(9);
  const AsGraph g = generate_topology(params, rng);
  for (const auto asn : g.ases_in_tier(Tier::kStub)) {
    for (const auto p : g.neighbors_with(asn, Relationship::kProvider)) {
      EXPECT_EQ(g.tier(p), Tier::kTier1);
    }
  }
}

}  // namespace
}  // namespace artemis::topo

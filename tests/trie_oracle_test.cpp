// Differential tests: the arena-backed path-compressed PrefixTrie against
// a naive std::map<Prefix, int> oracle over random operation sequences
// (both address families, with erasures, across the stride-table
// activation threshold), plus targeted regression tests for skip-label
// edge cases (sibling splits at bit 0, full-length keys, splits across
// the 64-bit key-word boundary).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "netbase/prefix_trie.hpp"
#include "util/rng.hpp"

namespace artemis::net {
namespace {

Prefix P(std::string_view s) { return Prefix::must_parse(s); }
IpAddress A(std::string_view s) { return IpAddress::parse(s).value(); }

Prefix random_v4(Rng& rng, int min_len = 0, int max_len = 32) {
  return Prefix(IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                static_cast<int>(rng.uniform_int(min_len, max_len)));
}

Prefix random_v6(Rng& rng, int min_len = 0, int max_len = 128) {
  return Prefix(IpAddress::v6(rng.next_u64(), rng.next_u64()),
                static_cast<int>(rng.uniform_int(min_len, max_len)));
}

/// Longest-prefix match by linear scan over the oracle.
const std::pair<const Prefix, int>* oracle_lpm(const std::map<Prefix, int>& oracle,
                                               const IpAddress& addr) {
  const std::pair<const Prefix, int>* best = nullptr;
  for (const auto& entry : oracle) {
    if (!entry.first.contains(addr)) continue;
    if (best == nullptr || entry.first.length() > best->first.length()) {
      best = &entry;
    }
  }
  return best;
}

class TrieOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieOracleTest, RandomOpsMatchMapOracle) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Prefix, int> oracle;
  std::vector<Prefix> inserted;  // with repeats; used to pick erase targets

  // Enough v4 inserts that the stride tables activate mid-sequence, so
  // the accelerated descent paths (and their maintenance on erase) are
  // exercised against the oracle too.
  const int kOps = 4000;
  for (int op = 0; op < kOps; ++op) {
    const double dice = rng.uniform01();
    const bool v6 = rng.chance(0.25);
    if (dice < 0.70) {
      const Prefix p = v6 ? random_v6(rng, 0, 128) : random_v4(rng, 0, 32);
      const int value = static_cast<int>(rng.uniform_int(0, 1 << 20));
      const bool fresh_trie = trie.insert(p, value);
      const bool fresh_oracle = oracle.insert_or_assign(p, value).second;
      ASSERT_EQ(fresh_trie, fresh_oracle) << p.to_string();
      inserted.push_back(p);
    } else if (dice < 0.85 && !inserted.empty()) {
      const Prefix p = inserted[rng.uniform_u64(inserted.size())];
      ASSERT_EQ(trie.erase(p), oracle.erase(p) > 0) << p.to_string();
    } else {
      // Probe a prefix that may or may not be present.
      const Prefix p = v6 ? random_v6(rng, 0, 32) : random_v4(rng, 0, 16);
      const auto it = oracle.find(p);
      const int* got = trie.find(p);
      if (it == oracle.end()) {
        ASSERT_EQ(got, nullptr) << p.to_string();
      } else {
        ASSERT_NE(got, nullptr) << p.to_string();
        ASSERT_EQ(*got, it->second) << p.to_string();
      }
    }
    ASSERT_EQ(trie.size(), oracle.size());
  }

  // Longest-prefix matches agree for random addresses of both families.
  for (int i = 0; i < 2000; ++i) {
    const IpAddress addr = rng.chance(0.5)
                               ? IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64()))
                               : IpAddress::v6(rng.next_u64(), rng.next_u64());
    const auto got = trie.lookup(addr);
    const auto* want = oracle_lpm(oracle, addr);
    if (want == nullptr) {
      ASSERT_FALSE(got.has_value()) << addr.to_string();
    } else {
      ASSERT_TRUE(got.has_value()) << addr.to_string();
      EXPECT_EQ(got->first, want->first) << addr.to_string();
      EXPECT_EQ(*got->second, want->second) << addr.to_string();
    }
  }

  // lookup_covering and visit_covering agree with a filtered oracle scan.
  for (int i = 0; i < 300; ++i) {
    const Prefix scope = rng.chance(0.5) ? random_v4(rng, 0, 28) : random_v6(rng, 0, 64);
    std::vector<Prefix> got;
    trie.visit_covering(scope,
                        [&](const Prefix& p, const int&) { got.push_back(p); });
    std::vector<Prefix> want;
    for (const auto& [p, v] : oracle) {
      if (p.covers(scope)) want.push_back(p);
    }
    // visit_covering reports root-to-leaf, i.e. ascending length.
    std::sort(want.begin(), want.end(), [](const Prefix& a, const Prefix& b) {
      return a.length() < b.length();
    });
    EXPECT_EQ(got, want) << scope.to_string();

    const auto covering = trie.lookup_covering(scope);
    if (want.empty()) {
      EXPECT_FALSE(covering.has_value()) << scope.to_string();
    } else {
      ASSERT_TRUE(covering.has_value()) << scope.to_string();
      EXPECT_EQ(covering->first, want.back()) << scope.to_string();
    }
  }

  // visit_covered agrees with a filtered oracle scan.
  for (int i = 0; i < 300; ++i) {
    const Prefix scope = rng.chance(0.5) ? random_v4(rng, 0, 24) : random_v6(rng, 0, 48);
    std::vector<Prefix> got;
    trie.visit_covered(scope,
                       [&](const Prefix& p, const int&) { got.push_back(p); });
    std::vector<Prefix> want;
    for (const auto& [p, v] : oracle) {
      if (scope.covers(p)) want.push_back(p);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << scope.to_string();
  }

  // visit_all enumerates exactly the oracle's entries.
  std::size_t count = 0;
  trie.visit_all([&](const Prefix& p, const int& v) {
    const auto it = oracle.find(p);
    ASSERT_NE(it, oracle.end()) << p.to_string();
    EXPECT_EQ(v, it->second);
    ++count;
  });
  EXPECT_EQ(count, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieOracleTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// ------------------------------------------------- skip-label edge cases

TEST(TrieSkipLabelTest, SiblingSplitAtBitZero) {
  PrefixTrie<int> trie;
  // First insert hangs a path-compressed leaf straight off the root; the
  // second diverges at bit 0, forcing a split at the very top.
  EXPECT_TRUE(trie.insert(P("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.insert(P("192.168.0.0/16"), 2));
  EXPECT_EQ(*trie.lookup(A("10.1.2.3"))->second, 1);
  EXPECT_EQ(*trie.lookup(A("192.168.9.9"))->second, 2);
  EXPECT_FALSE(trie.lookup(A("127.0.0.1")).has_value());

  // Same at /1 granularity: the two halves of the address space.
  PrefixTrie<int> halves;
  EXPECT_TRUE(halves.insert(P("0.0.0.0/1"), 10));
  EXPECT_TRUE(halves.insert(P("128.0.0.0/1"), 11));
  EXPECT_EQ(*halves.lookup(A("1.2.3.4"))->second, 10);
  EXPECT_EQ(*halves.lookup(A("200.2.3.4"))->second, 11);
  EXPECT_EQ(halves.size(), 2u);
}

TEST(TrieSkipLabelTest, FullLengthHostKeys) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(P("10.0.0.1/32"), 1));
  EXPECT_TRUE(trie.insert(P("10.0.0.2/32"), 2));  // diverges at bit 30
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 1);
  EXPECT_EQ(*trie.lookup(A("10.0.0.2"))->second, 2);
  EXPECT_FALSE(trie.lookup(A("10.0.0.3")).has_value());

  EXPECT_TRUE(trie.insert(P("2001:db8::1/128"), 3));
  EXPECT_TRUE(trie.insert(P("2001:db8::2/128"), 4));  // diverges at bit 126
  EXPECT_EQ(*trie.lookup(A("2001:db8::1"))->second, 3);
  EXPECT_EQ(*trie.lookup(A("2001:db8::2"))->second, 4);
  EXPECT_FALSE(trie.lookup(A("2001:db8::3")).has_value());
}

TEST(TrieSkipLabelTest, AncestorSpliceOntoCompressedEdge) {
  PrefixTrie<int> trie;
  // The /24 leaf hangs on a long skip-label edge; inserting the /8
  // afterwards must splice a node into the middle of that edge.
  trie.insert(P("10.20.30.0/24"), 24);
  EXPECT_TRUE(trie.insert(P("10.0.0.0/8"), 8));
  EXPECT_EQ(*trie.lookup(A("10.20.30.5"))->second, 24);
  EXPECT_EQ(*trie.lookup(A("10.99.99.99"))->second, 8);
  // And a divergence below the splice point still resolves correctly.
  EXPECT_TRUE(trie.insert(P("10.20.40.0/24"), 40));
  EXPECT_EQ(*trie.lookup(A("10.20.40.1"))->second, 40);
  EXPECT_EQ(*trie.lookup(A("10.20.30.1"))->second, 24);
  EXPECT_EQ(trie.size(), 3u);
}

TEST(TrieSkipLabelTest, SplitAcrossWordBoundary) {
  PrefixTrie<int> trie;
  // Both keys share the first 68 bits; the divergence sits in the low
  // 64-bit word of the key, exercising the two-word compare.
  const auto base = P("2001:db8::/64");
  trie.insert(base, 64);
  EXPECT_TRUE(trie.insert(P("2001:db8:0:0:0800::/70"), 70));
  EXPECT_TRUE(trie.insert(P("2001:db8:0:0:0c00::/70"), 71));  // diverges at bit 69
  EXPECT_EQ(*trie.lookup(A("2001:db8::0800:0:0:1"))->second, 70);
  EXPECT_EQ(*trie.lookup(A("2001:db8::0c00:0:0:1"))->second, 71);
  EXPECT_EQ(*trie.lookup(A("2001:db8::1"))->second, 64);
  EXPECT_EQ(trie.size(), 3u);
}

TEST(TrieSkipLabelTest, EraseKeepsCompressedStructureUsable) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/24"), 24);
  trie.insert(P("10.0.0.0/30"), 30);
  EXPECT_TRUE(trie.erase(P("10.0.0.0/24")));
  EXPECT_EQ(*trie.lookup(A("10.0.0.1"))->second, 30);
  EXPECT_EQ(*trie.lookup(A("10.0.0.9"))->second, 8);  // /24 gone, falls to /8
  // Reinsertion reuses the dead node.
  EXPECT_TRUE(trie.insert(P("10.0.0.0/24"), 240));
  EXPECT_EQ(*trie.lookup(A("10.0.0.9"))->second, 240);
}

TEST(TrieSkipLabelTest, StrideTableActivationPreservesSemantics) {
  // Push one trie across the table-activation threshold and spot-check
  // lookups straddling the boundary, including erase maintenance after
  // activation.
  PrefixTrie<int> trie;
  std::map<Prefix, int> oracle;
  Rng rng(7);
  for (int i = 0; i < 1500; ++i) {
    const Prefix p = random_v4(rng, 8, 28);
    trie.insert(p, i);
    oracle.insert_or_assign(p, i);
  }
  // Erase a sampled subset after the tables are live.
  std::vector<Prefix> victims;
  int k = 0;
  for (const auto& [p, v] : oracle) {
    if (++k % 7 == 0) victims.push_back(p);
  }
  for (const auto& p : victims) {
    EXPECT_TRUE(trie.erase(p));
    oracle.erase(p);
  }
  for (int i = 0; i < 3000; ++i) {
    const IpAddress addr = IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64()));
    const auto got = trie.lookup(addr);
    const auto* want = oracle_lpm(oracle, addr);
    if (want == nullptr) {
      ASSERT_FALSE(got.has_value()) << addr.to_string();
    } else {
      ASSERT_TRUE(got.has_value()) << addr.to_string();
      EXPECT_EQ(got->first, want->first) << addr.to_string();
    }
  }
}

}  // namespace
}  // namespace artemis::net

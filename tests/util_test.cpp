#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <set>
#include <vector>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace artemis {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimDurationTest, NamedConstructorsAgree) {
  EXPECT_EQ(SimDuration::seconds(1).as_micros(), 1'000'000);
  EXPECT_EQ(SimDuration::millis(1500).as_micros(), 1'500'000);
  EXPECT_EQ(SimDuration::minutes(2).as_micros(), 120'000'000);
  EXPECT_EQ(SimDuration::hours(1).as_micros(), 3'600'000'000LL);
  EXPECT_EQ(SimDuration::micros(7).as_micros(), 7);
}

TEST(SimDurationTest, Arithmetic) {
  const auto a = SimDuration::seconds(10);
  const auto b = SimDuration::seconds(4);
  EXPECT_EQ((a + b).as_seconds(), 14.0);
  EXPECT_EQ((a - b).as_seconds(), 6.0);
  EXPECT_EQ((a * 0.5).as_seconds(), 5.0);
  EXPECT_EQ((a / 2.0).as_seconds(), 5.0);
  auto c = a;
  c += b;
  EXPECT_EQ(c.as_seconds(), 14.0);
  c -= b;
  EXPECT_EQ(c.as_seconds(), 10.0);
}

TEST(SimDurationTest, Comparisons) {
  EXPECT_LT(SimDuration::seconds(1), SimDuration::seconds(2));
  EXPECT_EQ(SimDuration::seconds(60), SimDuration::minutes(1));
  EXPECT_GT(SimDuration::hours(1), SimDuration::minutes(59));
}

TEST(SimDurationTest, ToStringPicksUnits) {
  EXPECT_EQ(SimDuration::millis(250).to_string(), "250ms");
  EXPECT_EQ(SimDuration::seconds(45.3).to_string(), "45.3s");
  EXPECT_EQ(SimDuration::seconds(312).to_string(), "5m12s");
  EXPECT_EQ(SimDuration::hours(2).to_string(), "2h00m");
}

TEST(SimTimeTest, OffsetAndDifference) {
  const auto t0 = SimTime::zero();
  const auto t1 = t0 + SimDuration::seconds(30);
  EXPECT_EQ((t1 - t0).as_seconds(), 30.0);
  EXPECT_EQ(t1.as_seconds(), 30.0);
  EXPECT_LT(t0, t1);
}

TEST(SimTimeTest, NeverIsSentinel) {
  EXPECT_TRUE(SimTime::never().is_never());
  EXPECT_FALSE(SimTime::zero().is_never());
  EXPECT_LT(SimTime::at_seconds(1e12), SimTime::never());
  EXPECT_EQ(SimTime::never().to_string(), "never");
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng root(7);
  Rng fork_a = root.fork("alpha");
  Rng fork_a2 = root.fork("alpha");
  Rng fork_b = root.fork("beta");
  EXPECT_EQ(fork_a.next_u64(), fork_a2.next_u64());
  Rng fork_a3 = root.fork("alpha");
  EXPECT_NE(fork_a3.next_u64(), fork_b.next_u64());
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.uniform_u64(17), 17u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, UniformDurationWithinBounds) {
  Rng rng(23);
  const auto lo = SimDuration::seconds(1);
  const auto hi = SimDuration::seconds(2);
  for (int i = 0; i < 1000; ++i) {
    const auto d = rng.uniform_duration(lo, hi);
    ASSERT_GE(d, lo);
    ASSERT_LE(d, hi);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled.data(), shuffled.size());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ------------------------------------------------------------------ Stats

TEST(SummaryTest, EmptySummaryYieldsNan) {
  Summary s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.percentile(50)));
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SummaryTest, PercentileRejectsOutOfRange) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::out_of_range);
  EXPECT_THROW(s.percentile(101), std::out_of_range);
}

TEST(SummaryTest, CdfAtCountsInclusive) {
  Summary s;
  s.add_all({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SummaryTest, CdfPointsMonotone) {
  Summary s;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) s.add(rng.uniform(0, 100));
  const auto points = s.cdf_points(20);
  ASSERT_EQ(points.size(), 20u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(SummaryTest, AddAfterQueryResorts) {
  Summary s;
  s.add_all({5, 1});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ParseU64Valid) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parse_u64("42"), 42u);
}

TEST(StringsTest, ParseU64Rejects) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64(" 1"));
  EXPECT_FALSE(parse_u64("1x"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
}

TEST(StringsTest, ParseU32RespectsMax) {
  EXPECT_EQ(parse_u32("255", 255), 255u);
  EXPECT_FALSE(parse_u32("256", 255));
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, ThresholdFilters) {
  std::vector<std::string> captured;
  auto previous = Logging::set_sink(
      [&captured](LogLevel, const std::string& line) { captured.push_back(line); });
  const LogLevel old_threshold = Logging::threshold();
  Logging::set_threshold(LogLevel::kWarn);

  ARTEMIS_LOG(kInfo, SimTime::zero(), "test") << "hidden";
  ARTEMIS_LOG(kWarn, SimTime::zero(), "test") << "visible " << 42;

  Logging::set_threshold(old_threshold);
  Logging::set_sink(std::move(previous));

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("visible 42"), std::string::npos);
  EXPECT_NE(captured[0].find("[test]"), std::string::npos);
}

TEST(LoggingTest, RecordCarriesSimTime) {
  std::vector<std::string> captured;
  auto previous = Logging::set_sink(
      [&captured](LogLevel, const std::string& line) { captured.push_back(line); });
  const LogLevel old_threshold = Logging::threshold();
  Logging::set_threshold(LogLevel::kDebug);

  ARTEMIS_LOG(kError, SimTime::at_seconds(1.5), "svc") << "boom";

  Logging::set_threshold(old_threshold);
  Logging::set_sink(std::move(previous));
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("t+1.500s"), std::string::npos);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace artemis

// artemis_ingest: the always-on archive ingest supervisor.
//
// Fetches RouteViews / RIPE RIS style archive URLs over HTTP (Range
// resume, capped exponential backoff with seeded jitter), streams them
// through the MRT converter into an observation journal, and survives
// being killed at any instant: restart it with the same arguments and
// ingest continues from the journal tail without duplicating or losing a
// record (see src/ingest/supervisor.hpp for the resume protocol and
// README "Running as a service" for operations guidance).
//
// Usage: artemis_ingest --journal DIR [options] <url...>
//   --journal DIR       target journal directory (created or resumed)
//   --fsync POLICY      never | on_rotate | interval:<ms>  (default never)
//   --compress          store sealed journal segments gzip-compressed
//   --retain POLICY     sealed-segment retention: none (default) or
//                       comma-joined segments=<n>, bytes=<n[k|m|g]>,
//                       age=<n[s|m|h|d]> terms (oldest deleted first,
//                       never the active segment) — bounds disk for
//                       always-on ingest
//   --no-index          skip per-segment index footers
//   --retries N         consecutive no-progress failures per URL before
//                       the source fails (default 8)
//   --backoff-ms N      first retry delay; doubles per retry (default 250)
//   --max-backoff-ms N  backoff growth cap (default 30000)
//   --timeout-ms N      connect and per-read stall timeout (default 5000)
//   --max-lag N         journal lag bound in records (default 65536)
//   --policy P          lag policy: flush (lossless) | drop (accounted
//                       shedding) (default flush)
//   --seed N            backoff jitter seed (default 1)
//   --source NAME       source-name prefix (default "mrt")
//   --batch N           observations per appended batch (default 4096)
//   --stats-json        print the full per-source stats JSON on stdout
//                       (including a telemetry snapshot); also printed on
//                       fatal-error exits so post-mortem ledgers are
//                       never empty
//   --metrics-port N    serve Prometheus /metrics and /healthz on
//                       127.0.0.1:N (0 = pick an ephemeral port; the
//                       bound port is announced on stderr)
//   --metrics-snapshot FILE
//                       periodically write the telemetry snapshot JSON
//                       to FILE (atomic tmp+rename), and once on exit
//   --metrics-interval-ms N
//                       snapshot cadence for --metrics-snapshot
//                       (default 1000)
//   --detect CONFIG     run live detection on the ingest stream: CONFIG
//                       is an ownership config JSON (schema v1 or the
//                       multi-tenant v2 "tenants" form, README schema).
//                       The detector taps exactly the journaled spans, so
//                       in a clean run its alerts match a later journal
//                       replay. Alert lines go to stderr ("alert: ...").
//                       SIGHUP re-reads CONFIG and swaps the ownership
//                       table in at the next batch boundary — incremental
//                       reload, no restart, no re-replay; a config that
//                       fails to parse is logged and the previous table
//                       stays live (see docs/operations.md).
//   --detect-shards N   detection shard count (default 1), with --detect
//   --detect-threaded   one worker thread per shard (batch-granular ring
//                       handoff); the ingest thread is the sole producer
//   --wait-policy P     busy_poll | futex, with --detect-threaded
//   --pin               pin shard workers to CPUs, with --detect-threaded
//
// Exit status: 0 every URL ingested clean, 3 partial (some URL failed or
// tore mid-archive; everything recovered IS in the journal), 1 hard error
// (unwritable journal, corrupt cursor), 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "artemis/config.hpp"
#include "ingest/supervisor.hpp"
#include "pipeline/sharded_detector.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/metrics.hpp"

namespace {

// Set by a pre-parse argv scan so even a usage error (which fires
// mid-parse) can honor --stats-json with a minimal machine-readable
// post-mortem on stdout.
bool g_stats_json_on_error = false;

// SIGHUP = reload the --detect ownership config. The handler only sets
// the flag; the ingest thread (the detector's single producer) notices
// it at the next batch boundary and performs the swap there, so the
// reload never races a batch in flight.
volatile std::sig_atomic_t g_reload_requested = 0;
void request_reload(int) { g_reload_requested = 1; }

/// Reads and parses the ownership config file; throws on any failure.
artemis::core::Config load_detect_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return artemis::core::Config::from_json_text(buffer.str());
}

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr,
               "usage: artemis_ingest --journal DIR [--fsync POLICY] [--compress] "
               "[--retain POLICY] [--no-index] [--retries N] "
               "[--backoff-ms N] [--max-backoff-ms N] [--timeout-ms N] "
               "[--max-lag N] [--policy flush|drop] [--seed N] [--source NAME] "
               "[--batch N] [--stats-json] [--metrics-port N] "
               "[--metrics-snapshot FILE [--metrics-interval-ms N]] "
               "[--detect CONFIG.json "
               "[--detect-shards N] [--detect-threaded "
               "[--wait-policy busy_poll|futex] [--pin]]] <url...>\n");
  if (g_stats_json_on_error) {
    artemis::json::Object err;
    err["error"] = artemis::json::Value(std::string(what));
    err["usage_error"] = artemis::json::Value(true);
    std::printf("%s\n", artemis::json::Value(std::move(err)).dump(2).c_str());
  }
  std::exit(2);
}

long parse_long(const char* flag, const char* text, long min_value) {
  char* rest = nullptr;
  const long value = std::strtol(text, &rest, 10);
  if (rest == text || *rest != '\0' || value < min_value) {
    usage_error((std::string(flag) + " must be an integer >= " +
                 std::to_string(min_value))
                    .c_str());
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artemis;

  ingest::SupervisorOptions options;
  std::vector<std::string> urls;
  bool stats_json = false;
  std::string detect_config_path;
  pipeline::ShardedDetectorOptions detect_options;
  bool detect_subflags = false;   // any --detect-shards/--detect-threaded
  bool threaded_subflags = false; // any --wait-policy/--pin
  long metrics_port = -1;         // -1 = no HTTP server
  std::string metrics_snapshot;
  long metrics_interval_ms = 1000;

  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--stats-json") g_stats_json_on_error = true;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_error((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--journal") {
      options.journal_dir = flag_value("--journal");
    } else if (arg == "--fsync") {
      if (!journal::parse_fsync_policy(flag_value("--fsync"), options.journal)) {
        usage_error("--fsync must be never, on_rotate, or interval:<ms>");
      }
    } else if (arg == "--compress") {
      options.journal.compress_segments = true;
    } else if (arg == "--retain") {
      if (!journal::parse_retention_policy(flag_value("--retain"),
                                           options.journal)) {
        usage_error("--retain must be none or comma-joined segments=<n>, "
                    "bytes=<n[k|m|g]>, age=<n[s|m|h|d]> terms");
      }
    } else if (arg == "--no-index") {
      options.journal.index_segments = false;
    } else if (arg == "--retries") {
      options.fetch.max_retries =
          static_cast<int>(parse_long("--retries", flag_value("--retries"), 0));
    } else if (arg == "--backoff-ms") {
      options.fetch.backoff_ms =
          parse_long("--backoff-ms", flag_value("--backoff-ms"), 0);
    } else if (arg == "--max-backoff-ms") {
      options.fetch.max_backoff_ms =
          parse_long("--max-backoff-ms", flag_value("--max-backoff-ms"), 0);
    } else if (arg == "--timeout-ms") {
      const long t = parse_long("--timeout-ms", flag_value("--timeout-ms"), 1);
      options.fetch.connect_timeout_ms = static_cast<int>(t);
      options.fetch.io_timeout_ms = static_cast<int>(t);
    } else if (arg == "--max-lag") {
      options.pipeline.max_lag_records = static_cast<std::size_t>(
          parse_long("--max-lag", flag_value("--max-lag"), 1));
    } else if (arg == "--policy") {
      if (!ingest::parse_lag_policy(flag_value("--policy"),
                                    options.pipeline.lag_policy)) {
        usage_error("--policy must be flush or drop");
      }
    } else if (arg == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(parse_long("--seed", flag_value("--seed"), 0));
    } else if (arg == "--source") {
      options.pipeline.convert.source_prefix = flag_value("--source");
    } else if (arg == "--batch") {
      options.pipeline.convert.batch_capacity = static_cast<std::size_t>(
          parse_long("--batch", flag_value("--batch"), 1));
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (arg == "--metrics-port") {
      metrics_port = parse_long("--metrics-port", flag_value("--metrics-port"), 0);
      if (metrics_port > 65535) usage_error("--metrics-port must be in [0, 65535]");
    } else if (arg == "--metrics-snapshot") {
      metrics_snapshot = flag_value("--metrics-snapshot");
    } else if (arg == "--metrics-interval-ms") {
      metrics_interval_ms = parse_long("--metrics-interval-ms",
                                       flag_value("--metrics-interval-ms"), 1);
    } else if (arg == "--detect") {
      detect_config_path = flag_value("--detect");
    } else if (arg == "--detect-shards") {
      const long n = parse_long("--detect-shards", flag_value("--detect-shards"), 1);
      if (n > 1024) usage_error("--detect-shards must be in [1, 1024]");
      detect_options.shards = static_cast<std::size_t>(n);
      detect_subflags = true;
    } else if (arg == "--detect-threaded") {
      detect_options.threaded = true;
      detect_subflags = true;
    } else if (arg == "--wait-policy") {
      if (!pipeline::parse_wait_policy(flag_value("--wait-policy"),
                                       detect_options.wait_policy)) {
        usage_error("--wait-policy must be busy_poll or futex");
      }
      threaded_subflags = true;
    } else if (arg == "--pin") {
      detect_options.pin_workers = true;
      threaded_subflags = true;
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error(("unknown option " + std::string(arg)).c_str());
    } else {
      urls.emplace_back(arg);
    }
  }
  if (options.journal_dir.empty()) usage_error("--journal DIR is required");
  if (urls.empty()) usage_error("no URLs given");
  // Reject silently-ignored combinations, same as the other CLIs.
  if (detect_config_path.empty() && detect_subflags) {
    usage_error("--detect-shards/--detect-threaded require --detect");
  }
  if (threaded_subflags && !detect_options.threaded) {
    usage_error("--wait-policy/--pin require --detect-threaded");
  }

  // One registry for the whole process; every stage registers its cells
  // into it before ingest starts. Enabled by any consumer of the data —
  // the HTTP server, the periodic snapshot file, or the final stats blob.
  telemetry::MetricsRegistry registry;
  const bool telemetry_enabled =
      metrics_port >= 0 || !metrics_snapshot.empty() || stats_json;
  if (telemetry_enabled) {
    options.pipeline.metrics = &registry;
    detect_options.metrics = &registry;
  }

  std::unique_ptr<ingest::IngestSupervisor> supervisor;
  try {
    // Live detection tap: built before the supervisor so the pipeline
    // options carry the bound handler. The ingest thread is the single
    // producer the threaded detector requires.
    std::unique_ptr<pipeline::ShardedDetector> detector;
    if (!detect_config_path.empty()) {
      core::Config detect_config;
      try {
        detect_config = load_detect_config(detect_config_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: --detect %s: %s\n", detect_config_path.c_str(),
                     e.what());
        return 1;
      }
      detector = std::make_unique<pipeline::ShardedDetector>(
          detect_config.build_table(), detect_options);
      // Incremental reload: SIGHUP re-reads the config file and swaps
      // the ownership snapshot in on the producer thread, at a batch
      // boundary. A bad config keeps the previous table live — an
      // operator typo must never take detection down.
      std::signal(SIGHUP, request_reload);
      options.pipeline.detection_tap =
          [d = detector.get(),
           path = detect_config_path](std::span<const feeds::Observation> batch) {
            if (g_reload_requested != 0) {
              g_reload_requested = 0;
              try {
                auto table = load_detect_config(path).build_table();
                const std::size_t owned = table->owned().size();
                const std::size_t tenants = table->tenants().size();
                d->reload(std::move(table));
                std::fprintf(stderr,
                             "reload: ownership config %s applied "
                             "(%zu prefixes, %zu tenants)\n",
                             path.c_str(), owned, tenants);
              } catch (const std::exception& e) {
                std::fprintf(stderr,
                             "warning: reload of %s failed, keeping previous "
                             "ownership: %s\n",
                             path.c_str(), e.what());
              }
            }
            d->submit_batch(batch);
          };
    }

    supervisor = std::make_unique<ingest::IngestSupervisor>(options, urls);

    std::unique_ptr<telemetry::MetricsServer> metrics_server;
    if (metrics_port >= 0 || !metrics_snapshot.empty()) {
      telemetry::MetricsServerOptions server_options;
      server_options.port = metrics_port >= 0 ? static_cast<int>(metrics_port) : 0;
      server_options.snapshot_path = metrics_snapshot;
      server_options.snapshot_interval_ms = static_cast<int>(metrics_interval_ms);
      // /healthz = the no-silent-loss ledger, read live. `converted` is
      // incremented before the outcome counters, so the only reachable
      // failure is a genuine accounting violation.
      const telemetry::IngestCounters& ledger = supervisor->metrics();
      server_options.health = [&ledger]() {
        telemetry::HealthStatus status;
        if (!ledger.enabled()) return status;
        const std::uint64_t converted = ledger.converted->value();
        const std::uint64_t accounted = ledger.journaled->value() +
                                        ledger.skipped->value() +
                                        ledger.dropped->value();
        if (accounted > converted) {
          status.ok = false;
          status.body = "ledger violation: journaled+skipped+dropped=" +
                        std::to_string(accounted) + " > converted=" +
                        std::to_string(converted) + "\n";
        }
        return status;
      };
      metrics_server =
          std::make_unique<telemetry::MetricsServer>(registry, server_options);
      if (metrics_port >= 0) {
        std::fprintf(stderr, "metrics: listening on http://127.0.0.1:%d/metrics\n",
                     metrics_server->port());
      }
    }

    const ingest::IngestReport report = supervisor->run();
    if (detector) {
      detector->flush();
      const auto alerts = detector->merged_alerts();
      for (const auto& alert : alerts) {
        std::fprintf(stderr, "alert: %s\n", alert.to_string().c_str());
      }
      std::fprintf(stderr,
                   "detection: %llu observations, %zu merged alerts "
                   "(%zu shards, %s, %s)\n",
                   static_cast<unsigned long long>(
                       detector->observations_processed()),
                   alerts.size(), detector->shard_count(),
                   detect_options.threaded ? "threaded" : "inline",
                   std::string(to_string(detect_options.wait_policy)).c_str());
    }
    for (const auto& sr : report.sources) {
      if (sr.state == ingest::SourceState::kFailed) {
        std::fprintf(stderr, "warning: %s failed: %s\n", sr.url.c_str(),
                     sr.fetch.last_error.c_str());
      } else if (sr.feed.convert.truncated || !sr.feed.convert.error.empty()) {
        std::fprintf(stderr, "warning: %s truncated: %llu complete records ingested\n",
                     sr.url.c_str(),
                     static_cast<unsigned long long>(sr.feed.convert.records));
      }
    }
    if (stats_json) {
      json::Value doc = ingest::ingest_report_to_json(options, report);
      doc.as_object()["metrics"] = registry.snapshot_json();
      std::printf("%s\n", doc.dump(2).c_str());
    } else {
      std::printf("ingested %llu records across %llu sources (next_seq %llu)\n",
                  static_cast<unsigned long long>(report.records_journaled),
                  static_cast<unsigned long long>(report.sources.size()),
                  static_cast<unsigned long long>(report.journal_next_seq));
    }
    return (report.sources_failed > 0 || report.sources_truncated > 0) ? 3 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    if (stats_json) {
      // Fatal-error post-mortem: everything the run accomplished before
      // dying, plus the error itself — the ledger is never empty.
      json::Value doc =
          supervisor
              ? ingest::ingest_report_to_json(options, supervisor->partial_report())
              : json::Value(json::Object{});
      doc.as_object()["error"] = json::Value(std::string(e.what()));
      if (telemetry_enabled) {
        doc.as_object()["metrics"] = registry.snapshot_json();
      }
      std::printf("%s\n", doc.dump(2).c_str());
    }
    return 1;
  }
}

#!/usr/bin/env python3
"""Markdown link checker for the repo docs (CI gate).

Scans README.md and docs/*.md (plus any files given on the command
line) for inline links `[text](target)` and checks, offline:

  * relative file targets exist (query strings stripped);
  * fragment targets (`file.md#anchor`, or bare `#anchor` into the same
    file) name a real heading, using GitHub's slug rules (lowercase,
    spaces -> '-', punctuation dropped, duplicate slugs suffixed -1/-2);
  * absolute http(s) URLs are NOT fetched — only syntax-checked — so CI
    stays hermetic.

Exit 0 when every link resolves, 1 with a per-link report otherwise.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug: strip markdown, lowercase, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)
    slug = "".join(c for c in text.lower() if c.isalnum() or c in " -_")
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def anchors_of(path: Path, cache: dict) -> set:
    if path not in cache:
        seen: dict = {}
        anchors = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
        cache[path] = anchors
    return cache[path]


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main(argv):
    repo = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in argv[1:]]
    if not files:
        files = [repo / "README.md"] + sorted((repo / "docs").glob("*.md"))
    anchor_cache: dict = {}
    errors = []
    checked = 0
    for md in files:
        md = md.resolve()
        try:
            shown = md.relative_to(repo)
        except ValueError:
            shown = md
        for lineno, target in links_of(md):
            checked += 1
            where = f"{shown}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # syntax only; CI stays offline
            raw, _, fragment = target.partition("#")
            raw = raw.split("?")[0]
            dest = md if not raw else (md.parent / raw).resolve()
            if not dest.exists():
                errors.append(f"{where}: broken file link '{target}'")
                continue
            if fragment:
                if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                    errors.append(f"{where}: fragment into non-markdown '{target}'")
                elif fragment.lower() not in anchors_of(dest, anchor_cache):
                    errors.append(f"{where}: dead anchor '{target}'")
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        print(f"{len(errors)} broken link(s) out of {checked} checked",
              file=sys.stderr)
        return 1
    print(f"ok: {checked} links checked across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

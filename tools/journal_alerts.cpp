// journal_alerts: replay an observation journal through detection and
// print the canonical merged alert list.
//
// The CI replay-determinism gate is built on this tool: replay the same
// journal at --shards 1 and --shards 4 on every compiler in the matrix
// and diff the output against a checked-in golden file — bit-identity of
// the whole import -> journal -> replay -> detection path, enforced per
// commit. It is also a handy archive forensics tool: import a RouteViews
// window with mrt2journal, then ask "which of MY prefixes were hijacked
// in this window?" without writing a scenario file.
//
// Usage: journal_alerts --journal DIR (--owned SPEC | --config FILE)
//                       [--shards N] [...]
//   --journal DIR   journal directory (mrt2journal / scenario_runner)
//   --owned SPEC    an owned prefix and its legitimate origin ASNs,
//                   e.g. 10.0.0.0/23=65001 or 2001:db8::/32=65003,65004
//                   (repeatable)
//   --config FILE   ownership config JSON (schema v1 or the multi-tenant
//                   v2 "tenants" form). Combines with --owned: the flag
//                   prefixes join the config's default tenant. At least
//                   one of --owned/--config is required.
//   --shards N      detection shard count (default 1). Output is
//                   bit-identical for every N — that is the point.
//   --threaded      one worker thread per shard (batch-granular ring
//                   handoff) instead of inline dispatch. Output is still
//                   bit-identical — the CI gate replays a threaded leg
//                   against the same golden file.
//   --wait-policy P busy_poll (default) or futex, with --threaded
//   --pin           pin shard workers to consecutive CPUs, with --threaded
//   --since-us N    only replay records with event time >= N sim-micros
//   --until-us N    only replay records with event time <= N sim-micros
//   --no-prune      do not project the owned prefixes into the journal
//                   read filter (scan every segment)
//
// Footer-accelerated forensics: by default the owned prefixes are
// projected into the journal QueryFilter as an any-overlap term, so the
// reader's .ajx footers prune segments that provably never mention owned
// space — a month of archive with one hijacked afternoon decodes only
// the afternoon. The projection cannot change the alert list (an alert
// REQUIRES an overlapping owned prefix; without a ROA table non-
// overlapping observations are unclassifiable), which is why it is safe
// to have on by default; --since/--until genuinely restrict the window.
// The scan/skip counters go to stderr and are asserted by the CI gate.
//
// Output: one canonical HijackAlert::to_string() line per merged alert
// (sorted by detected_at, type, prefix, offender), then nothing else on
// stdout. Progress and statistics go to stderr. Exit 0 on success (alerts
// or not), 1 on hard errors, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "artemis/config.hpp"
#include "feeds/monitor_hub.hpp"
#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "pipeline/sharded_detector.hpp"

namespace {

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr,
               "usage: journal_alerts --journal DIR (--owned PREFIX=ASN[,ASN...] "
               "| --config FILE) [--owned ...] [--shards N] [--threaded "
               "[--wait-policy busy_poll|futex] [--pin]] "
               "[--since-us N] [--until-us N] [--no-prune]\n");
  std::exit(2);
}

std::int64_t parse_micros(const char* text, const char* flag) {
  char* rest = nullptr;
  const long long value = std::strtoll(text, &rest, 10);
  if (rest == text || *rest != '\0') {
    usage_error((std::string(flag) + " needs an integer (sim micros)").c_str());
  }
  return static_cast<std::int64_t>(value);
}

/// Parses "10.0.0.0/23=65001,65002" into an OwnedPrefix.
artemis::core::OwnedPrefix parse_owned(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) usage_error("--owned needs PREFIX=ASN[,ASN...]");
  const auto prefix = artemis::net::Prefix::parse(spec.substr(0, eq));
  if (!prefix) usage_error(("bad prefix in --owned " + spec).c_str());
  artemis::core::OwnedPrefix owned;
  owned.prefix = *prefix;
  std::size_t pos = eq + 1;
  while (pos < spec.size()) {
    // strtoul silently wraps negatives; require a leading digit, and
    // reject AS0 (reserved, RFC 7607 — Config::from_json does the same).
    if (spec[pos] < '0' || spec[pos] > '9') {
      usage_error(("bad ASN in --owned " + spec).c_str());
    }
    char* rest = nullptr;
    const unsigned long asn = std::strtoul(spec.c_str() + pos, &rest, 10);
    if (rest == spec.c_str() + pos || asn == 0 || asn > 0xFFFFFFFFul) {
      usage_error(("bad ASN in --owned " + spec).c_str());
    }
    owned.legitimate_origins.insert(static_cast<artemis::bgp::Asn>(asn));
    pos = static_cast<std::size_t>(rest - spec.c_str());
    if (pos < spec.size()) {
      if (spec[pos] != ',') usage_error(("bad ASN list in --owned " + spec).c_str());
      ++pos;
    }
  }
  if (owned.legitimate_origins.empty()) {
    usage_error(("--owned " + spec + " lists no origins").c_str());
  }
  return owned;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artemis;

  std::string journal_dir;
  std::string config_path;
  std::vector<core::OwnedPrefix> owned_flags;
  std::size_t shards = 1;
  bool threaded = false;
  bool pin = false;
  bool prune = true;
  std::int64_t since_us = std::numeric_limits<std::int64_t>::min();
  std::int64_t until_us = std::numeric_limits<std::int64_t>::max();
  pipeline::WaitPolicy wait_policy = pipeline::WaitPolicy::kBusyPoll;
  bool wait_policy_given = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_error((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--journal") {
      journal_dir = flag_value("--journal");
    } else if (arg == "--owned") {
      owned_flags.push_back(parse_owned(flag_value("--owned")));
    } else if (arg == "--config") {
      config_path = flag_value("--config");
    } else if (arg == "--since-us") {
      since_us = parse_micros(flag_value("--since-us"), "--since-us");
    } else if (arg == "--until-us") {
      until_us = parse_micros(flag_value("--until-us"), "--until-us");
    } else if (arg == "--no-prune") {
      prune = false;
    } else if (arg == "--shards") {
      const char* text = flag_value("--shards");
      char* rest = nullptr;
      const long n = std::strtol(text, &rest, 10);
      if (rest == text || *rest != '\0' || n < 1 || n > 1024) {
        usage_error("--shards must be an integer in [1, 1024]");
      }
      shards = static_cast<std::size_t>(n);
    } else if (arg == "--threaded") {
      threaded = true;
    } else if (arg == "--wait-policy") {
      if (!pipeline::parse_wait_policy(flag_value("--wait-policy"), wait_policy)) {
        usage_error("--wait-policy must be busy_poll or futex");
      }
      wait_policy_given = true;
    } else if (arg == "--pin") {
      pin = true;
    } else {
      usage_error(("unknown argument " + std::string(arg)).c_str());
    }
  }
  if (journal_dir.empty()) usage_error("--journal DIR is required");
  if (owned_flags.empty() && config_path.empty()) {
    usage_error("at least one --owned PREFIX=ASN or a --config FILE is required");
  }
  if ((wait_policy_given || pin) && !threaded) {
    usage_error("--wait-policy/--pin require --threaded");
  }

  try {
    core::Config config;
    if (!config_path.empty()) {
      std::ifstream in(config_path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open --config " + config_path);
      std::ostringstream text;
      text << in.rdbuf();
      config = core::Config::from_json_text(text.str());
    }
    for (auto& owned : owned_flags) config.add_owned(std::move(owned));
    if (config.owns_nothing()) {
      usage_error("the ownership config lists no prefixes");
    }

    pipeline::ShardedDetectorOptions options;
    options.shards = shards;
    options.threaded = threaded;
    options.wait_policy = wait_policy;
    options.pin_workers = pin;
    pipeline::ShardedDetector detector(config, options);
    feeds::MonitorHub hub;
    detector.attach(hub);

    journal::JournalReader reader(journal_dir);
    journal::ReplayOptions replay_options;
    replay_options.filter.min_event_us = since_us;
    replay_options.filter.max_event_us = until_us;
    if (prune) {
      // The ownership projection: segments whose footer proves no owned
      // overlap are skipped without decoding. Alert-preserving (see the
      // header comment), so it is on unless --no-prune.
      for (const auto& owned : detector.ownership().owned()) {
        replay_options.filter.any_prefixes.push_back(owned.prefix);
      }
    }
    const bool filtered = !replay_options.filter.is_trivial();
    journal::ReplayFeed feed(reader, replay_options);
    const std::uint64_t replayed = feed.replay_all(hub);
    if (reader.truncated_tail()) {
      std::fprintf(stderr, "warning: journal has a truncated tail record\n");
    }
    if (filtered) {
      std::fprintf(stderr,
                   "index: scanned %llu/%zu segment(s) (%llu skipped via index); "
                   "%llu record(s) decoded\n",
                   static_cast<unsigned long long>(reader.segments_scanned()),
                   reader.segment_count(),
                   static_cast<unsigned long long>(reader.segments_skipped()),
                   static_cast<unsigned long long>(reader.records_scanned()));
    }

    // Threaded: barrier before reading merged state.
    detector.flush();
    const auto alerts = detector.merged_alerts();
    for (const auto& alert : alerts) {
      std::printf("%s\n", alert.to_string().c_str());
    }
    std::fprintf(stderr, "replayed %llu observations, %zu merged alerts (%zu shards)\n",
                 static_cast<unsigned long long>(replayed), alerts.size(), shards);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// journal_query: predicate queries over an observation journal — the
// flight-recorder forensics tool ("what did AS X announce for prefix P
// in window T?").
//
// Queries use the per-segment index footers (seg-<hex>.ajx): a segment
// whose footer proves no record can match is skipped without being
// opened — cold gzip segments stay compressed on disk. Records in the
// remaining segments are filtered exactly after decode, so the answer
// is always precise; footers only ever save work. Scan statistics
// (scanned vs skipped segments) are reported so the pruning is
// observable — the CI gate asserts a selective query scans only the
// footer-matching segments.
//
// Usage: journal_query --journal DIR [filters] [output] | --build-index
//   --prefix P      match records whose prefix overlaps P (covers or is
//                   covered by: sub-prefix hijacks and covering routes)
//   --source NAME   exact source name ("ris-live", "mrt:rrc00", ...)
//   --origin ASN    origin AS of the record's path
//   --type T        announce | withdraw | state
//   --since USEC    inclusive event-time lower bound, sim microseconds
//   --until USEC    inclusive event-time upper bound, sim microseconds
//   --limit N       stop after N matches
//   --json          one JSON document (query echo, matches, scan stats)
//                   on stdout instead of text lines
//   --count         print only the number of matches
//   --build-index   write missing index footers for sealed segments
//                   (after a crash, or for a journal recorded with
//                   indexing off), then exit
//
// Text output: one "<event_us> <observation>" line per match on stdout;
// scan statistics on stderr. Exit 0 on success (matches or none), 1 on
// hard errors (corrupt journal, unreadable directory), 2 on usage.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "journal/index.hpp"
#include "journal/reader.hpp"
#include "json/json.hpp"
#include "pipeline/observation_batch.hpp"

namespace {

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr,
               "usage: journal_query --journal DIR [--prefix P] [--source NAME] "
               "[--origin ASN] [--type announce|withdraw|state] [--since USEC] "
               "[--until USEC] [--limit N] [--json] [--count]\n"
               "       journal_query --journal DIR --build-index\n");
  std::exit(2);
}

std::int64_t parse_int64(const char* text, const char* flag) {
  char* rest = nullptr;
  const long long value = std::strtoll(text, &rest, 10);
  if (rest == text || *rest != '\0') {
    usage_error((std::string(flag) + " must be an integer").c_str());
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artemis;

  std::string journal_dir;
  journal::QueryFilter filter;
  std::uint64_t limit = 0;  // 0 = unlimited
  bool json_output = false;
  bool count_only = false;
  bool build_index = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_error((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--journal") {
      journal_dir = flag_value("--journal");
    } else if (arg == "--prefix") {
      const char* text = flag_value("--prefix");
      const auto prefix = net::Prefix::parse(text);
      if (!prefix) usage_error(("bad --prefix " + std::string(text)).c_str());
      filter.prefix = *prefix;
    } else if (arg == "--source") {
      filter.source = flag_value("--source");
      if (filter.source.empty()) usage_error("--source must be non-empty");
    } else if (arg == "--origin") {
      const char* text = flag_value("--origin");
      char* rest = nullptr;
      const unsigned long asn = std::strtoul(text, &rest, 10);
      if (rest == text || *rest != '\0' || asn == 0 || asn > 0xFFFFFFFFul) {
        usage_error("--origin must be an ASN in [1, 4294967295]");
      }
      filter.origin = static_cast<bgp::Asn>(asn);
    } else if (arg == "--type") {
      const std::string_view text = flag_value("--type");
      if (text == "announce") {
        filter.type = feeds::ObservationType::kAnnouncement;
      } else if (text == "withdraw") {
        filter.type = feeds::ObservationType::kWithdrawal;
      } else if (text == "state") {
        filter.type = feeds::ObservationType::kRouteState;
      } else {
        usage_error("--type must be announce, withdraw or state");
      }
    } else if (arg == "--since") {
      filter.min_event_us = parse_int64(flag_value("--since"), "--since");
    } else if (arg == "--until") {
      filter.max_event_us = parse_int64(flag_value("--until"), "--until");
    } else if (arg == "--limit") {
      const std::int64_t n = parse_int64(flag_value("--limit"), "--limit");
      if (n <= 0) usage_error("--limit must be > 0");
      limit = static_cast<std::uint64_t>(n);
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--count") {
      count_only = true;
    } else if (arg == "--build-index") {
      build_index = true;
    } else {
      usage_error(("unknown argument " + std::string(arg)).c_str());
    }
  }
  if (journal_dir.empty()) usage_error("--journal DIR is required");
  if (filter.min_event_us > filter.max_event_us) {
    usage_error("--since must not exceed --until");
  }

  try {
    if (build_index) {
      const std::size_t written = journal::build_missing_footers(journal_dir);
      std::fprintf(stderr, "wrote %zu index footer(s) in %s\n", written,
                   journal_dir.c_str());
      return 0;
    }

    journal::JournalReader reader(journal_dir);
    reader.set_filter(filter);

    json::Array matches;
    std::uint64_t matched = 0;
    bool truncated_by_limit = false;
    pipeline::ObservationBatch batch;
    while (!truncated_by_limit && reader.read_batch(batch, 1024) > 0) {
      for (const auto& obs : batch) {
        if (limit != 0 && matched == limit) {
          truncated_by_limit = true;
          break;
        }
        ++matched;
        if (count_only) continue;
        if (json_output) {
          json::Object m;
          m["type"] = json::Value(std::string(feeds::to_string(obs.type)));
          m["prefix"] = json::Value(obs.prefix.to_string());
          m["vantage"] = json::Value(static_cast<std::int64_t>(obs.vantage));
          m["origin"] = json::Value(static_cast<std::int64_t>(obs.origin_as()));
          m["as_path"] = json::Value(obs.attrs.as_path.to_string());
          m["source"] = json::Value(obs.source);
          m["event_us"] =
              json::Value(static_cast<std::int64_t>(obs.event_time.as_micros()));
          m["delivered_us"] = json::Value(
              static_cast<std::int64_t>(obs.delivered_at.as_micros()));
          matches.push_back(json::Value(std::move(m)));
        } else {
          std::printf("%" PRId64 " %s\n", obs.event_time.as_micros(),
                      obs.to_string().c_str());
        }
      }
    }

    if (json_output) {
      json::Object filter_echo;
      if (filter.prefix.has_value()) {
        filter_echo["prefix"] = json::Value(filter.prefix->to_string());
      }
      if (!filter.source.empty()) {
        filter_echo["source"] = json::Value(filter.source);
      }
      if (filter.origin != bgp::kNoAsn) {
        filter_echo["origin"] = json::Value(static_cast<std::int64_t>(filter.origin));
      }
      if (filter.type.has_value()) {
        filter_echo["type"] =
            json::Value(std::string(feeds::to_string(*filter.type)));
      }
      if (filter.min_event_us != std::numeric_limits<std::int64_t>::min()) {
        filter_echo["since_us"] = json::Value(filter.min_event_us);
      }
      if (filter.max_event_us != std::numeric_limits<std::int64_t>::max()) {
        filter_echo["until_us"] = json::Value(filter.max_event_us);
      }
      json::Object stats;
      stats["segments_total"] =
          json::Value(static_cast<std::int64_t>(reader.segment_count()));
      stats["segments_scanned"] =
          json::Value(static_cast<std::int64_t>(reader.segments_scanned()));
      stats["segments_skipped"] =
          json::Value(static_cast<std::int64_t>(reader.segments_skipped()));
      stats["records_scanned"] =
          json::Value(static_cast<std::int64_t>(reader.records_scanned()));
      json::Object out;
      out["journal_dir"] = json::Value(journal_dir);
      out["filter"] = json::Value(std::move(filter_echo));
      out["matches"] = json::Value(static_cast<std::int64_t>(matched));
      if (!count_only) out["observations"] = json::Value(std::move(matches));
      out["truncated_by_limit"] = json::Value(truncated_by_limit);
      out["truncated_tail"] = json::Value(reader.truncated_tail());
      out["stats"] = json::Value(std::move(stats));
      std::printf("%s\n", json::Value(std::move(out)).dump(2).c_str());
    } else if (count_only) {
      std::printf("%" PRIu64 "\n", matched);
    }
    if (reader.truncated_tail()) {
      std::fprintf(stderr, "warning: journal has a truncated tail record\n");
    }
    std::fprintf(stderr,
                 "%" PRIu64 " match(es); scanned %" PRIu64 "/%zu segment(s)"
                 " (%" PRIu64 " skipped via index), %" PRIu64
                 " record(s) decoded\n",
                 matched, reader.segments_scanned(), reader.segment_count(),
                 reader.segments_skipped(), reader.records_scanned());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

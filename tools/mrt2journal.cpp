// mrt2journal: import archived MRT files into an observation journal.
//
// Converts RouteViews / RIPE RIS style MRT archives (BGP4MP update files
// and TABLE_DUMP_V2 RIB snapshots, IPv4 + IPv6 — including v6 NLRI in
// MP_REACH/MP_UNREACH attributes — 2- and 4-byte AS flavors) into the
// journal format under src/journal/, so archived control-plane windows
// replay through the detection pipeline at line rate
// (`scenario_runner --replay DIR`, journal_alerts, bench_mrt_import).
// gzip'd and bzip2'd archives import directly: compression is sniffed
// from magic bytes and streamed — no temp files. Records with shapes we
// recognize but do not model (AS_SET path segments) are skipped whole
// and counted (`skipped_records`); the file keeps importing.
//
// Usage: mrt2journal --journal DIR [options] <file.mrt...>
//   --journal DIR     target journal directory (created, or resumed if it
//                     already holds a journal)
//   --source NAME     source-name prefix (default "mrt")
//   --single-source   tag every observation with NAME verbatim instead of
//                     the default one-source-per-collector-peer scheme
//                     ("NAME:AS<peer>")
//   --lag-s N         delivered_at = event_time + N seconds (default 0)
//   --batch N         observations per appended batch (default 4096)
//   --fsync POLICY    never | on_rotate | interval:<ms>  (default never)
//   --compress        store sealed segments gzip-compressed (cold
//                     archive form; replay is bit-identical)
//   --retain POLICY   retention for sealed segments: none (default) or
//                     comma-joined segments=<n>, bytes=<n[k|m|g]>,
//                     age=<n[s|m|h|d]> terms — oldest segments are
//                     deleted first, the active segment never
//   --no-index        skip the per-segment index footers (journal_query
//                     then full-scans every segment)
//
// Files import in argument order through one monotone import clock.
// Truncated files (interrupted downloads) import every complete record
// and are reported; the resulting journal is always clean and readable.
// Exit status: 0 all files clean, 3 some files truncated/malformed
// (partial import), 1 hard error (unreadable file, unwritable journal),
// 2 usage error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "mrt/observation_convert.hpp"

namespace {

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr,
               "usage: mrt2journal --journal DIR [--source NAME] [--single-source] "
               "[--lag-s N] [--batch N] [--fsync POLICY] [--compress] "
               "[--retain POLICY] [--no-index] <file.mrt...>\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artemis;

  std::string journal_dir;
  mrt::ObservationConvertOptions options;
  journal::JournalWriterOptions writer_options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_error((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--journal") {
      journal_dir = flag_value("--journal");
    } else if (arg == "--source") {
      options.source_prefix = flag_value("--source");
    } else if (arg == "--single-source") {
      options.source_scheme = mrt::ImportSourceScheme::kSingle;
    } else if (arg == "--lag-s") {
      const char* text = flag_value("--lag-s");
      char* rest = nullptr;
      const double lag = std::strtod(text, &rest);
      // NaN-safe form (NaN compares false to everything), and bounded so
      // the microsecond conversion below cannot overflow the int64 cast.
      if (rest == text || *rest != '\0' || !(lag >= 0.0) || lag > 1e9) {
        usage_error("--lag-s must be a number in [0, 1e9]");
      }
      options.delivery_lag = SimDuration::micros(static_cast<std::int64_t>(lag * 1e6));
    } else if (arg == "--batch") {
      const char* text = flag_value("--batch");
      char* rest = nullptr;
      const long batch = std::strtol(text, &rest, 10);
      if (rest == text || *rest != '\0' || batch < 1) {
        usage_error("--batch must be a positive integer");
      }
      options.batch_capacity = static_cast<std::size_t>(batch);
    } else if (arg == "--fsync") {
      if (!journal::parse_fsync_policy(flag_value("--fsync"), writer_options)) {
        usage_error("--fsync must be never, on_rotate, or interval:<ms>");
      }
    } else if (arg == "--compress") {
      writer_options.compress_segments = true;
    } else if (arg == "--retain") {
      if (!journal::parse_retention_policy(flag_value("--retain"), writer_options)) {
        usage_error("--retain must be none or comma-joined segments=<n>, "
                    "bytes=<n[k|m|g]>, age=<n[s|m|h|d]> terms");
      }
    } else if (arg == "--no-index") {
      writer_options.index_segments = false;
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error(("unknown option " + std::string(arg)).c_str());
    } else {
      files.emplace_back(arg);
    }
  }
  if (journal_dir.empty()) usage_error("--journal DIR is required");
  if (files.empty()) usage_error("no MRT files given");

  try {
    const mrt::MrtImportResult result =
        mrt::import_mrt_files(files, journal_dir, options, writer_options);
    for (const auto& err : result.file_errors) {
      std::fprintf(stderr, "warning: %s\n", err.c_str());
    }
    // Machine-readable summary on stdout (scenario_runner style; the
    // json serializer handles path escaping).
    std::printf("%s\n", mrt::import_result_to_json(journal_dir, result).dump(2).c_str());
    return (result.truncated_files > 0 || result.failed_files > 0) ? 3 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

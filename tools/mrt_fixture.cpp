// mrt_fixture: emit the canonical dual-stack MRT test window.
//
// Writes a small, fully deterministic MRT byte stream covering every
// record flavor the importer models — v4 updates (AS4 and pre-AS4 with
// the AS4_PATH merge), MP_REACH/MP_UNREACH v6 updates with both next-hop
// lengths, a v6-withdraw-only update, an AS_SET record (exercising
// record-skip recovery), and v4 + v6 TABLE_DUMP_V2 snapshots — against
// the owned config
//     10.0.0.0/23=65001  192.0.2.0/24=65002  2001:db8::/32=65003
// so it raises a known alert set. tests/golden/make_golden.sh uses it to
// regenerate the committed golden journal + alert fixtures behind the CI
// replay-determinism gate.
//
// Usage: mrt_fixture --out FILE [--gzip]
//   --gzip   wrap the window in a single gzip member (zlib, mtime 0, so
//            the compressed bytes are deterministic too)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mrt/mrt.hpp"
#include "mrt/stream_reader.hpp"

using namespace artemis;

namespace {

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr, "usage: mrt_fixture --out FILE [--gzip]\n");
  std::exit(2);
}

mrt::UpdateRecord update(bgp::Asn peer, double at_seconds,
                         const std::vector<std::string>& announced,
                         std::vector<bgp::Asn> path,
                         const std::vector<std::string>& withdrawn = {}) {
  mrt::UpdateRecord rec;
  rec.peer_asn = peer;
  rec.local_asn = 64512;
  rec.peer_ip = net::IpAddress::v4(0x0A000000 | peer);
  rec.timestamp = SimTime::at_seconds(at_seconds);
  rec.update.sender = peer;
  for (const auto& p : announced) {
    rec.update.announced.push_back(net::Prefix::must_parse(p));
  }
  for (const auto& p : withdrawn) {
    rec.update.withdrawn.push_back(net::Prefix::must_parse(p));
  }
  rec.update.attrs.as_path = bgp::AsPath(std::move(path));
  return rec;
}

mrt::RibEntryRecord rib_entry(bgp::Asn peer, double at_seconds,
                              const std::string& prefix, std::vector<bgp::Asn> path) {
  mrt::RibEntryRecord entry;
  entry.peer_asn = peer;
  entry.timestamp = SimTime::at_seconds(at_seconds);
  entry.route.prefix = net::Prefix::must_parse(prefix);
  entry.route.attrs.as_path = bgp::AsPath(std::move(path));
  return entry;
}

/// A complete UPDATE record carrying an AS_SET path segment: the importer
/// must skip exactly this record and keep going (deterministically).
std::vector<std::uint8_t> as_set_record(bgp::Asn peer, double at_seconds) {
  return mrt::encode_update_record_as_set(
      update(peer, at_seconds, {"10.0.0.0/23"}, {65001, 65002}));
}

std::vector<std::uint8_t> dual_stack_window() {
  std::vector<std::uint8_t> out;
  const auto add = [&out](const std::vector<std::uint8_t>& bytes) {
    out.insert(out.end(), bytes.begin(), bytes.end());
  };
  // v4 exact-origin hijack of the owned /23, then the legitimate origin.
  add(mrt::encode_update_record(update(9, 100, {"10.0.0.0/23"}, {9, 3356, 666})));
  add(mrt::encode_update_record(update(9, 101, {"10.0.0.0/23"}, {9, 3356, 65001})));
  // v4 sub-prefix hijack plus an unrelated withdrawal in one record.
  add(mrt::encode_update_record(
      update(8, 102, {"10.0.1.0/24"}, {8, 1299, 666}, {"203.0.113.0/24"})));
  // Pre-AS4 speaker, wide ASN restored by the AS4_PATH merge.
  add(mrt::encode_update_record_as2(
      update(7, 103, {"192.0.2.0/24"}, {7, 70000, 666})));
  // AS_SET record: skipped whole, import continues (and the golden
  // output proves the skip is deterministic).
  add(as_set_record(9, 104));
  // MP_REACH v6 sub-prefix hijack (16-byte next hop).
  add(mrt::encode_update_record(
      update(9, 105, {"2001:db8:dead::/48"}, {9, 3356, 667})));
  // Dual-stack record with 32-byte next hop: v4 sub-prefix + v6 exact
  // hijack announced together, an MP_UNREACH withdrawal riding along.
  {
    mrt::UpdateEncodeOptions nh32;
    nh32.mp_next_hop_len = 32;
    add(mrt::encode_update_record(
        update(8, 106, {"10.0.1.0/24", "2001:db8::/32"}, {8, 1299, 667},
               {"2001:db8:aaaa::/48"}),
        nh32));
  }
  // v6-withdraw-only update (lone MP_UNREACH attribute).
  add(mrt::encode_update_record(update(9, 107, {}, {}, {"2001:db8:dead::/48"})));
  // v6 NLRI from a pre-AS4 speaker.
  add(mrt::encode_update_record_as2(
      update(7, 108, {"2001:db8:ffff::/48"}, {7, 70000, 667})));
  // v4 + v6 RIB snapshots close the window.
  add(mrt::encode_table_dump({rib_entry(9, 109, "10.0.0.0/23", {9, 3356, 666}),
                              rib_entry(8, 109, "198.51.100.0/24", {8, 1299, 65010})},
                             SimTime::at_seconds(109)));
  add(mrt::encode_table_dump({rib_entry(9, 110, "2001:db8::/32", {9, 3356, 667}),
                              rib_entry(9, 110, "2001:db8:ffff::/48", {9, 3356, 667})},
                             SimTime::at_seconds(110)));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool gzip = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) usage_error("--out needs a value");
      out_path = argv[++i];
    } else if (arg == "--gzip") {
      gzip = true;
    } else {
      usage_error(("unknown argument " + std::string(arg)).c_str());
    }
  }
  if (out_path.empty()) usage_error("--out FILE is required");

  std::vector<std::uint8_t> bytes = dual_stack_window();
  if (gzip) {
#ifdef ARTEMIS_HAVE_ZLIB
    bytes = mrt::gzip_compress(bytes);
#else
    std::fprintf(stderr, "error: built without zlib; --gzip unavailable\n");
    return 1;
#endif
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::fprintf(stderr, "wrote %zu bytes to %s (%s)\n", bytes.size(), out_path.c_str(),
               gzip ? "gzip" : "raw");
  return 0;
}
